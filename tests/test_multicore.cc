/**
 * @file
 * Multi-core machine-model tests: single-core equivalence of the
 * multiprogramming replay path, shootdown semantics at each of the
 * six kernel mutation sites, scheduler determinism across sweep
 * worker counts, and audited end-to-end multiprogrammed runs.
 *
 * The single-core byte-identity against the committed pre-refactor
 * baselines is enforced separately by tests/test_golden_stats.cc;
 * here the equivalence harness proves the capture/replay
 * multiprogramming path is indistinguishable from driving the
 * workload directly when there is nothing to schedule.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/translation_auditor.hh"
#include "equivalence.hh"
#include "sim/system.hh"
#include "sweep/matrix.hh"
#include "sweep/sweep.hh"
#include "workloads/multiprog.hh"
#include "workloads/workload.hh"

using namespace mtlbsim;

namespace
{

constexpr Addr MB = 1024 * 1024;
constexpr Addr dataBase = 0x10000000;

SystemConfig
multicoreConfig(unsigned cores)
{
    SystemConfig c;
    c.installedBytes = 64 * MB;
    c.mtlbEnabled = true;
    c.cores = cores;
    return c;
}

void
addData(System &sys, Addr size = 16 * MB)
{
    sys.kernel().addressSpace().addRegion("data", dataBase, size, {});
}

/** Touch @p addr from @p core so its private TLB holds the entry. */
void
warmCore(System &sys, unsigned core, Addr addr)
{
    sys.cpu(core).load(addr);
    ASSERT_TRUE(sys.tlb(core).probe(addr).has_value());
}

} // namespace

// --- Single-core equivalence -------------------------------------

TEST(MulticoreEquivalence, OneCoreOneProcessReplayIsByteIdentical)
{
    // A 1-core machine replaying a 1-process "mix" must be
    // indistinguishable — cycles, stats text, stats JSON — from the
    // same machine driving the workload directly.
    const SystemConfig config = multicoreConfig(1);

    const auto direct = testeq::runConfigured(config, [](System &s) {
        auto w = makeWorkload("em3d", 0.02, 0);
        w->setup(s);
        w->run(s);
    });
    const auto replay = testeq::runConfigured(config, [](System &s) {
        runMultiprogMix(s, {"em3d"}, 0.02, 0);
    });
    testeq::expectIdentical(direct, replay, "em3d 1x1 replay");
}

TEST(MulticoreEquivalence, SingleCoreConfigHasNoPerCoreGroups)
{
    // cores=1 must keep the exact legacy stats layout: no core<N>
    // groups, no mtlb_port group, no shootdown counters.
    System sys(multicoreConfig(1));
    const std::string json = sys.rootStats().toJson().dumped();
    EXPECT_EQ(json.find("core1"), std::string::npos);
    EXPECT_EQ(json.find("mtlb_port"), std::string::npos);
    EXPECT_EQ(json.find("shootdowns"), std::string::npos);
}

// --- Shootdown unit tests: the six kernel mutation sites ----------

TEST(Shootdown, RemapPurgesRemoteTlbAndChargesIpi)
{
    System sys(multicoreConfig(2));
    addData(sys);
    warmCore(sys, 1, dataBase);

    const auto epoch = sys.tlb(1).translationEpoch();
    const auto received = sys.kernel().shootdownsReceived(1);
    const Cycles remote_now = sys.cpu(1).now();

    sys.cpu(0).remap(dataBase, 64 * 1024);

    EXPECT_EQ(sys.kernel().shootdownsReceived(1), received + 1);
    // The initiating core services no IPI of its own.
    EXPECT_EQ(sys.kernel().shootdownsReceived(0), 0u);
    // Ranged shootdown: the remote entry is gone, and the epoch bump
    // retires the remote L0 memoizations and batch anchors.
    EXPECT_FALSE(sys.tlb(1).probe(dataBase).has_value());
    EXPECT_NE(sys.tlb(1).translationEpoch(), epoch);
    // The remote CPU paid the IPI service latency.
    EXPECT_EQ(sys.cpu(1).now(), remote_now + 300);
}

TEST(Shootdown, MapPageToShadowPurgesRemoteTlb)
{
    System sys(multicoreConfig(2));
    addData(sys);
    sys.cpu(0).load(dataBase);      // materialize, real mapping
    warmCore(sys, 1, dataBase);

    const auto epoch = sys.tlb(1).translationEpoch();
    const auto received = sys.kernel().shootdownsReceived(1);

    // First recolor of a real-mapped page runs mapPageToShadow only.
    const unsigned color = sys.kernel().colorOf(dataBase);
    sys.cpu(0).recolorPage(dataBase, (color + 1) % 128);

    EXPECT_EQ(sys.kernel().shootdownsReceived(1), received + 1);
    EXPECT_FALSE(sys.tlb(1).probe(dataBase).has_value());
    EXPECT_NE(sys.tlb(1).translationEpoch(), epoch);
}

TEST(Shootdown, DemoteSingleShadowPageShootsDownTwice)
{
    System sys(multicoreConfig(2));
    addData(sys);
    sys.cpu(0).load(dataBase);
    const unsigned color = sys.kernel().colorOf(dataBase);
    sys.cpu(0).recolorPage(dataBase, (color + 1) % 128);
    warmCore(sys, 1, dataBase);

    const auto received = sys.kernel().shootdownsReceived(1);

    // Recoloring an already-shadow page demotes the old single-page
    // mapping and installs a new one: two mutations, two IPIs.
    sys.cpu(0).recolorPage(dataBase, (color + 2) % 128);

    EXPECT_EQ(sys.kernel().shootdownsReceived(1), received + 2);
    EXPECT_FALSE(sys.tlb(1).probe(dataBase).has_value());
}

TEST(Shootdown, PagewiseSwapOutSendsEpochOnlyShootdown)
{
    System sys(multicoreConfig(2));
    addData(sys);
    sys.cpu(0).remap(dataBase, 16 * 1024);
    sys.cpu(0).load(dataBase);
    warmCore(sys, 1, dataBase);

    const auto epoch = sys.tlb(1).translationEpoch();
    const auto received = sys.kernel().shootdownsReceived(1);

    sys.kernel().setActiveCore(0);
    sys.kernel().swapOutSuperpagePagewise(dataBase, sys.cpu(0).now());

    EXPECT_EQ(sys.kernel().shootdownsReceived(1), received + 1);
    // Epoch-only: the superpage TLB entry deliberately survives
    // (§2.5 — the MMC faults on access to a swapped base page), but
    // remote L0 memoizations and batch anchors must die because the
    // freed frames may be reused.
    EXPECT_TRUE(sys.tlb(1).probe(dataBase).has_value());
    EXPECT_NE(sys.tlb(1).translationEpoch(), epoch);
}

TEST(Shootdown, WholeSwapOutSendsEpochOnlyShootdown)
{
    System sys(multicoreConfig(2));
    addData(sys);
    sys.cpu(0).remap(dataBase, 16 * 1024);
    sys.cpu(0).load(dataBase);
    warmCore(sys, 1, dataBase);

    const auto epoch = sys.tlb(1).translationEpoch();
    const auto received = sys.kernel().shootdownsReceived(1);

    sys.kernel().setActiveCore(0);
    sys.kernel().swapOutSuperpageWhole(dataBase, sys.cpu(0).now());

    EXPECT_EQ(sys.kernel().shootdownsReceived(1), received + 1);
    EXPECT_TRUE(sys.tlb(1).probe(dataBase).has_value());
    EXPECT_NE(sys.tlb(1).translationEpoch(), epoch);
}

TEST(Shootdown, ShadowFaultSwapInShootsDownFrameReuse)
{
    System sys(multicoreConfig(2));
    addData(sys);
    sys.cpu(0).remap(dataBase, 16 * 1024);
    sys.cpu(0).load(dataBase);
    sys.kernel().setActiveCore(0);
    sys.kernel().swapOutSuperpagePagewise(dataBase, sys.cpu(0).now());

    const auto epoch = sys.tlb(1).translationEpoch();
    const auto received = sys.kernel().shootdownsReceived(1);

    // The access faults at the MMC and swaps the page back in under
    // an unchanged CPU-visible translation: epoch-only shootdown.
    sys.cpu(0).load(dataBase);
    EXPECT_TRUE(sys.kernel().addressSpace().isPagePresent(dataBase));

    EXPECT_EQ(sys.kernel().shootdownsReceived(1), received + 1);
    EXPECT_NE(sys.tlb(1).translationEpoch(), epoch);
}

TEST(Shootdown, SuppressedShootdownTripsCrossCoreInvariant)
{
    // The planted-fault path the fuzzer uses: swallowing one
    // broadcast leaves core 1 provably stale, and the auditor's
    // cross-core-coherence invariant must say so.
    System sys(multicoreConfig(2));
    addData(sys);
    warmCore(sys, 1, dataBase);

    sys.kernel().suppressNextShootdown();
    sys.cpu(0).remap(dataBase, 64 * 1024);

    ASSERT_TRUE(sys.tlb(1).probe(dataBase).has_value());
    const auto report = sys.auditor().collect();
    EXPECT_FALSE(report.clean());
    EXPECT_TRUE(report.has("cross-core-coherence"));
}

TEST(Shootdown, CleanBroadcastKeepsAuditorQuiet)
{
    System sys(multicoreConfig(2));
    addData(sys);
    warmCore(sys, 1, dataBase);
    sys.cpu(0).remap(dataBase, 64 * 1024);
    sys.cpu(1).load(dataBase);      // refill after the shootdown

    const auto report = sys.auditor().collect();
    EXPECT_TRUE(report.clean());
}

// --- Scheduler ----------------------------------------------------

TEST(Scheduler, MixCompletesAllProgramsOnFewerCores)
{
    System sys(multicoreConfig(2));
    const Cycles total = runMultiprogMix(
        sys, {"compress95", "compress95", "compress95", "compress95"},
        0.02, 0);
    EXPECT_GT(total, 0u);
    EXPECT_EQ(sys.kernel().numProcesses(), 4u);
    // Both cores did real work.
    EXPECT_GT(sys.cpu(0).now(), 0u);
    EXPECT_GT(sys.cpu(1).now(), 0u);
}

TEST(Scheduler, QuantumZeroRunsToCompletion)
{
    SystemConfig config = multicoreConfig(1);
    config.sched.quantum = 0;
    System sys(config);
    const Cycles total =
        runMultiprogMix(sys, {"compress95", "compress95"}, 0.02, 0);
    EXPECT_GT(total, 0u);
    EXPECT_EQ(sys.kernel().numProcesses(), 2u);
}

TEST(Scheduler, DeterministicAcrossSweepWorkerCounts)
{
    // The multiprogrammed sweep job must serialize byte-identically
    // with --jobs 1/4/8: the mix's interleaving is a function of the
    // job alone, never of the host's thread schedule.
    std::vector<sweep::SweepJob> jobs;
    for (int v = 0; v < 4; ++v) {
        sweep::SweepJob job;
        job.id = "mix/det" + std::to_string(v);
        job.workload = "mix";
        job.scale = 0.02;
        job.config = multicoreConfig(2);
        job.config.sched.quantum = 500'000 + 100'000 * v;
        job.processes = {"compress95", "em3d", "vortex", "em3d"};
        jobs.push_back(std::move(job));
    }

    auto serialized = [&jobs](unsigned workers) {
        sweep::SweepOptions options;
        options.jobs = workers;
        const auto results = sweep::SweepRunner(options).run(jobs);
        for (const auto &r : results)
            EXPECT_TRUE(r.ok) << r.id << ": " << r.error;
        return sweep::sweepToJson(results).dumped();
    };

    const std::string serial = serialized(1);
    EXPECT_EQ(serialized(4), serial);
    EXPECT_EQ(serialized(8), serial);
}

// --- Audited end-to-end runs --------------------------------------

TEST(MulticoreEndToEnd, TwoCoreFourProcessEm3dAuditsClean)
{
    SystemConfig config = multicoreConfig(2);
    config.check.enabled = true;
    config.check.interval = 2'000'000;  // periodic + final audit

    System sys(config);
    const Cycles total = runMultiprogMix(
        sys, {"em3d", "em3d", "em3d", "em3d"}, 0.02, 0);
    sys.audit();                        // panics on any violation

    EXPECT_GT(total, 0u);
    EXPECT_GT(sys.auditor().auditsRun(), 0u);
    EXPECT_EQ(sys.auditor().violationsFound(), 0u);
    EXPECT_GT(sys.kernel().shootdownsReceived(0), 0u);
    EXPECT_GT(sys.kernel().shootdownsReceived(1), 0u);
}

TEST(MulticoreEndToEnd, FourCoreSixteenProcessMixAuditsClean)
{
    // The acceptance mix: 4 cores x 16 processes of
    // compress/vortex/em3d with periodic audits on, completing with
    // zero violations and shootdown traffic on every core.
    SystemConfig config = multicoreConfig(4);
    config.check.enabled = true;
    config.check.interval = 2'000'000;

    std::vector<std::string> names;
    const std::vector<std::string> rotation{"compress95", "vortex",
                                            "em3d"};
    for (unsigned p = 0; p < 16; ++p)
        names.push_back(rotation[p % rotation.size()]);

    System sys(config);
    const Cycles total = runMultiprogMix(sys, names, 0.02, 0);
    sys.audit();

    EXPECT_GT(total, 0u);
    EXPECT_EQ(sys.kernel().numProcesses(), 16u);
    EXPECT_EQ(sys.auditor().violationsFound(), 0u);
    for (unsigned c = 0; c < 4; ++c) {
        EXPECT_GT(sys.kernel().shootdownsReceived(c), 0u)
            << "core " << c << " serviced no shootdown IPIs";
    }
}
