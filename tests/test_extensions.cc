/**
 * @file
 * Tests for the §4/§6 shadow-memory extensions: the single-page
 * shadow pool, no-copy page recoloring, and all-shadow operation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "mmc/memsys.hh"
#include "os/shadow_page_pool.hh"
#include "sim/system.hh"

using namespace mtlbsim;

namespace
{

constexpr Addr MB = 1024 * 1024;

SystemConfig
physIndexedConfig(bool all_shadow = false)
{
    SystemConfig c;
    c.installedBytes = 64 * MB;
    c.cache.virtuallyIndexed = false;   // recoloring's habitat
    c.kernel.allShadowMode = all_shadow;
    return c;
}

} // namespace

/* ------------------------------------------------------------------ */
/* ShadowPagePool                                                      */
/* ------------------------------------------------------------------ */

TEST(ShadowPagePool, AllocatesAlignedUniquePages)
{
    BuddyShadowAllocator backing({0x80000000, 64 * MB});
    ShadowPagePool pool(backing, 128);
    std::set<Addr> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto p = pool.allocate();
        ASSERT_TRUE(p.has_value());
        EXPECT_EQ(*p & basePageMask, 0u);
        EXPECT_TRUE(seen.insert(*p).second);
    }
}

TEST(ShadowPagePool, ColoredAllocationHasRequestedColor)
{
    BuddyShadowAllocator backing({0x80000000, 64 * MB});
    ShadowPagePool pool(backing, 128);
    for (unsigned color : {0u, 1u, 63u, 127u}) {
        const auto p = pool.allocateColored(color);
        ASSERT_TRUE(p.has_value());
        EXPECT_EQ(pool.colorOf(*p), color);
    }
}

TEST(ShadowPagePool, FreeRecyclesIntoColorBucket)
{
    BuddyShadowAllocator backing({0x80000000, 64 * MB});
    ShadowPagePool pool(backing, 128);
    const auto p = pool.allocateColored(5);
    const auto before = pool.numFree();
    pool.free(*p);
    EXPECT_EQ(pool.numFree(), before + 1);
    // The freed page is available for its color again.
    bool found = false;
    for (std::size_t i = 0; i <= before + 1 && !found; ++i) {
        auto q = pool.allocateColored(5);
        if (!q)
            break;
        found = (*q == *p);
    }
    EXPECT_TRUE(found);
}

TEST(ShadowPagePool, ExhaustionReturnsNullopt)
{
    // Backing of exactly one refill block (1 MB = 256 pages).
    BuddyShadowAllocator backing({0x80000000, 16 * MB});
    ShadowPagePool pool(backing, 128);
    unsigned count = 0;
    while (pool.allocate())
        ++count;
    EXPECT_EQ(count, 16u * 256);    // whole region consumable
    EXPECT_FALSE(pool.allocateColored(3).has_value());
}

TEST(ShadowPagePool, RejectsBadGeometry)
{
    BuddyShadowAllocator backing({0x80000000, 16 * MB});
    EXPECT_THROW(ShadowPagePool(backing, 100), FatalError);  // !pow2
    EXPECT_THROW(ShadowPagePool(backing, 512), FatalError);  // > block
}

/* ------------------------------------------------------------------ */
/* Page recoloring (§6)                                                */
/* ------------------------------------------------------------------ */

TEST(Recoloring, ChangesTheColorWithoutCopy)
{
    System sys(physIndexedConfig());
    auto &as = sys.kernel().addressSpace();
    as.addRegion("data", 0x10000000, MB, {});

    sys.cpu().load(0x10000000);     // materialise
    const Addr pfn = as.frameOf(0x10000000);
    const unsigned old_color = sys.kernel().colorOf(0x10000000);
    const unsigned new_color = (old_color + 37) % 128;

    sys.kernel().recolorPage(0x10000000, new_color, sys.cpu().now());
    EXPECT_EQ(sys.kernel().colorOf(0x10000000), new_color);
    // No copy: the same real frame still backs the page.
    EXPECT_EQ(as.frameOf(0x10000000), pfn);
}

TEST(Recoloring, AccessesStillReachTheSameFrame)
{
    System sys(physIndexedConfig());
    auto &as = sys.kernel().addressSpace();
    as.addRegion("data", 0x10000000, MB, {});
    sys.cpu().load(0x10000000);
    const Addr pfn = as.frameOf(0x10000000);

    sys.kernel().recolorPage(0x10000000, 9, sys.cpu().now());

    // Translate through TLB + MTLB and confirm the real target.
    sys.kernel().handleTlbMiss(0x10000040, AccessType::Read,
                               sys.cpu().now());
    const auto tr = sys.tlb().lookup(0x10000040, AccessType::Read,
                                     AccessMode::User);
    ASSERT_TRUE(tr.hit);
    const auto mr =
        sys.memsys().mmc().service(MmcOp::SharedFill, tr.paddr);
    ASSERT_FALSE(mr.fault);
    EXPECT_EQ(mr.realAddr >> basePageShift, pfn);
}

TEST(Recoloring, RecolorTwiceFreesTheFirstShadowPage)
{
    System sys(physIndexedConfig());
    auto &as = sys.kernel().addressSpace();
    as.addRegion("data", 0x10000000, MB, {});
    sys.cpu().load(0x10000000);

    sys.kernel().recolorPage(0x10000000, 3, sys.cpu().now());
    const Addr first = as.findSuperpage(0x10000000)->shadowBase;
    sys.kernel().recolorPage(0x10000000, 4, sys.cpu().now());
    const Addr second = as.findSuperpage(0x10000000)->shadowBase;
    EXPECT_NE(first, second);
    EXPECT_EQ(sys.kernel().colorOf(0x10000000), 4u);
}

TEST(Recoloring, EliminatesConflictMisses)
{
    // Two hot pages whose frames collide in the physically indexed
    // cache thrash each other; recoloring one ends the conflict
    // without any copying — the Bershad-style use case §6 names.
    System sys(physIndexedConfig());
    auto &as = sys.kernel().addressSpace();
    as.addRegion("data", 0x10000000, 16 * MB, {});

    // Find two virtual pages with the same frame color.
    sys.cpu().load(0x10000000);
    const unsigned color_a = sys.kernel().colorOf(0x10000000);
    Addr conflicting = 0;
    for (Addr off = basePageSize; off < 16 * MB; off += basePageSize) {
        sys.cpu().load(0x10000000 + off);
        if (sys.kernel().colorOf(0x10000000 + off) == color_a) {
            conflicting = 0x10000000 + off;
            break;
        }
    }
    ASSERT_NE(conflicting, 0u) << "no colliding frame found";

    auto thrash = [&](unsigned reps) {
        const auto misses_before = sys.cache().misses();
        for (unsigned i = 0; i < reps; ++i) {
            sys.cpu().load(0x10000000 + (i % 32) * 32);
            sys.cpu().load(conflicting + (i % 32) * 32);
        }
        return sys.cache().misses() - misses_before;
    };

    const auto misses_conflicting = thrash(2000);

    // Recolor the second page away from the conflict.
    sys.kernel().recolorPage(conflicting, (color_a + 1) % 128,
                             sys.cpu().now());
    const auto misses_fixed = thrash(2000);

    EXPECT_GT(misses_conflicting, 3500u);   // ping-pong: ~every access
    EXPECT_LT(misses_fixed, 200u);          // steady state: all hits
}

TEST(Recoloring, RequiresMtlb)
{
    SystemConfig c = physIndexedConfig();
    c.mtlbEnabled = false;
    System sys(c);
    sys.kernel().addressSpace().addRegion("data", 0x10000000, MB, {});
    sys.cpu().load(0x10000000);
    EXPECT_THROW(
        sys.kernel().recolorPage(0x10000000, 1, sys.cpu().now()),
        FatalError);
}

TEST(Recoloring, InsideRealSuperpageIsFatal)
{
    System sys(physIndexedConfig());
    sys.kernel().addressSpace().addRegion("data", 0x10000000, MB, {});
    sys.cpu().remap(0x10000000, 64 * 1024);
    EXPECT_THROW(
        sys.kernel().recolorPage(0x10000000, 1, sys.cpu().now()),
        FatalError);
}

/* ------------------------------------------------------------------ */
/* All-shadow mode (§4)                                                */
/* ------------------------------------------------------------------ */

TEST(AllShadow, EveryPageMapsThroughShadowSpace)
{
    System sys(physIndexedConfig(true));
    auto &as = sys.kernel().addressSpace();
    as.addRegion("data", 0x10000000, MB, {});

    for (Addr off = 0; off < 8 * basePageSize; off += basePageSize)
        sys.cpu().load(0x10000000 + off);

    // Each touched page has a single-page shadow mapping, and the
    // TLB entry points into shadow space.
    for (Addr off = 0; off < 8 * basePageSize; off += basePageSize) {
        const ShadowSuperpage *sp =
            as.findSuperpage(0x10000000 + off);
        ASSERT_NE(sp, nullptr);
        EXPECT_EQ(sp->sizeClass, 0u);
        const auto entry = sys.tlb().probe(0x10000000 + off);
        ASSERT_TRUE(entry.has_value());
        EXPECT_EQ(sys.physmap().classify(entry->pbase),
                  AddrKind::Shadow);
    }
}

TEST(AllShadow, ValuesStillReachTheRightFrames)
{
    System sys(physIndexedConfig(true));
    auto &as = sys.kernel().addressSpace();
    as.addRegion("data", 0x10000000, MB, {});
    sys.cpu().store(0x10000000);
    const Addr pfn = as.frameOf(0x10000000);

    const auto tr = sys.tlb().lookup(0x10000000, AccessType::Read,
                                     AccessMode::User);
    ASSERT_TRUE(tr.hit);
    const auto mr =
        sys.memsys().mmc().service(MmcOp::SharedFill, tr.paddr);
    EXPECT_EQ(mr.realAddr >> basePageShift, pfn);
}

TEST(AllShadow, RemapPromotesSinglePagesToSuperpages)
{
    System sys(physIndexedConfig(true));
    auto &as = sys.kernel().addressSpace();
    as.addRegion("data", 0x10000000, MB, {});

    // Touch pages so they acquire single-page shadow mappings.
    for (Addr off = 0; off < 16 * basePageSize; off += basePageSize)
        sys.cpu().load(0x10000000 + off);

    sys.cpu().remap(0x10000000, 64 * 1024);

    const ShadowSuperpage *sp = as.findSuperpage(0x10000000);
    ASSERT_NE(sp, nullptr);
    EXPECT_EQ(sp->sizeClass, 2u);   // one 64 KB superpage
    // And the mapping still resolves correctly end to end.
    sys.cpu().load(0x10000000 + 5 * basePageSize);
}

TEST(AllShadow, RunsAWholeWorkloadSlice)
{
    // All-shadow mode must survive a real workload's full lifecycle.
    System sys(physIndexedConfig(true));
    auto run = [&] {
        Random rng(5);
        auto &as = sys.kernel().addressSpace();
        as.addRegion("data", 0x10000000, 4 * MB, {});
        for (int i = 0; i < 30'000; ++i) {
            sys.cpu().execute(3);
            const Addr a =
                0x10000000 + (rng.below(4 * MB) & ~Addr{7});
            if (rng.chance(1, 4))
                sys.cpu().store(a);
            else
                sys.cpu().load(a);
        }
    };
    EXPECT_NO_THROW(run());
    EXPECT_GT(sys.totalCycles(), 0u);
}

TEST(AllShadow, CostsMoreThanMixedMode)
{
    // §4 predicts a heavier MTLB load in all-shadow operation; the
    // same access pattern must never get *cheaper* by forcing every
    // access through the MTLB.
    auto run = [&](bool all_shadow) {
        System sys(physIndexedConfig(all_shadow));
        sys.kernel().addressSpace().addRegion("data", 0x10000000,
                                              4 * MB, {});
        Random rng(6);
        for (int i = 0; i < 30'000; ++i) {
            sys.cpu().execute(3);
            sys.cpu().load(0x10000000 +
                           (rng.below(4 * MB) & ~Addr{7}));
        }
        return sys.totalCycles();
    };
    EXPECT_GE(run(true), run(false));
}

/* ------------------------------------------------------------------ */
/* CLOCK daemon over MTLB reference bits (§2.5)                        */
/* ------------------------------------------------------------------ */

#include "os/clock_daemon.hh"

TEST(ClockDaemon, TouchedPagesWithFillsAreNotIdle)
{
    SystemConfig config;
    config.installedBytes = 64 * MB;
    System sys(config);
    auto &as = sys.kernel().addressSpace();
    as.addRegion("data", 0x10000000, MB, {});
    sys.cpu().remap(0x10000000, 64 * 1024);

    ClockDaemon daemon(as, sys.memsys(), sys.physmap());
    daemon.watch(0x10000000);
    EXPECT_EQ(daemon.numWatched(), 16u);

    // Touch half the pages (cold lines: the fills reach the MMC).
    for (unsigned p = 0; p < 8; ++p)
        sys.cpu().load(0x10000000 + p * basePageSize);

    const auto sweep = daemon.sweep(sys.cpu().now());
    EXPECT_EQ(sweep.idle.size(), 8u);
    for (const Addr va : sweep.idle)
        EXPECT_GE(va, 0x10000000u + 8 * basePageSize);
    EXPECT_GT(sweep.cycles, 0u);
}

TEST(ClockDaemon, SweepClearsBitsForTheNextInterval)
{
    SystemConfig config;
    config.installedBytes = 64 * MB;
    System sys(config);
    auto &as = sys.kernel().addressSpace();
    as.addRegion("data", 0x10000000, MB, {});
    sys.cpu().remap(0x10000000, 64 * 1024);

    ClockDaemon daemon(as, sys.memsys(), sys.physmap());
    daemon.watch(0x10000000);

    for (unsigned p = 0; p < 16; ++p)
        sys.cpu().load(0x10000000 + p * basePageSize);
    EXPECT_TRUE(daemon.sweep(sys.cpu().now()).idle.empty());
    // No touches since the sweep: everything now reads idle.
    EXPECT_EQ(daemon.sweep(sys.cpu().now()).idle.size(), 16u);
}

TEST(ClockDaemon, CachedReferencesAreInvisible)
{
    // The §2.5 caveat itself: a page re-touched only through cache
    // hits generates no fills, so the MTLB's bit stays clear.
    SystemConfig config;
    config.installedBytes = 64 * MB;
    System sys(config);
    auto &as = sys.kernel().addressSpace();
    as.addRegion("data", 0x10000000, MB, {});
    sys.cpu().remap(0x10000000, 16 * 1024);

    ClockDaemon daemon(as, sys.memsys(), sys.physmap());
    daemon.watch(0x10000000);

    sys.cpu().load(0x10000000);     // fill: bit set
    daemon.sweep(sys.cpu().now());  // bit cleared
    sys.cpu().load(0x10000000);     // cache hit: MMC sees nothing
    const auto sweep = daemon.sweep(sys.cpu().now());
    EXPECT_EQ(std::count(sweep.idle.begin(), sweep.idle.end(),
                         Addr{0x10000000}),
              1)
        << "an active-but-cached page should (wrongly) look idle";
}
