/**
 * @file
 * Tests for the named debug-flag facility.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <ostream>

#include "base/debug.hh"

using namespace mtlbsim;

TEST(DebugFlags, StartDisabled)
{
    debug::Flag flag("TestA");
    EXPECT_FALSE(flag.enabled());
}

TEST(DebugFlags, EnableDisableByName)
{
    debug::Flag flag("TestB");
    debug::enableFlag("TestB");
    EXPECT_TRUE(flag.enabled());
    debug::disableFlag("TestB");
    EXPECT_FALSE(flag.enabled());
}

TEST(DebugFlags, UnknownNameIsFatal)
{
    EXPECT_THROW(debug::enableFlag("NoSuchFlag"), FatalError);
    EXPECT_THROW(debug::disableFlag("NoSuchFlag"), FatalError);
}

TEST(DebugFlags, DuplicateNamesShareEnableState)
{
    // Each System owns its own "Kernel"/"MTLB" flag, so duplicate
    // names are expected: enabling the name toggles every carrier.
    debug::Flag one("TestC");
    debug::Flag two("TestC");
    debug::enableFlag("TestC");
    EXPECT_TRUE(one.enabled());
    EXPECT_TRUE(two.enabled());
    debug::disableFlag("TestC");
    EXPECT_FALSE(one.enabled());
    EXPECT_FALSE(two.enabled());
}

TEST(DebugFlags, ArmedNameEnablesLateRegistrations)
{
    // The sweep constructs Systems after --debug is parsed: a flag
    // registered after its name was enabled must start enabled.
    debug::Flag early("TestArm");
    debug::enableFlag("TestArm");
    debug::Flag late("TestArm");
    EXPECT_TRUE(late.enabled());
    debug::disableFlag("TestArm");
    debug::Flag afterDisable("TestArm");
    EXPECT_FALSE(afterDisable.enabled());
}

TEST(DebugFlags, ListArmsNamesWithNoCarrierYet)
{
    // MTLBSIM_DEBUG is parsed at driver startup, before any System
    // exists: a list token with no registered carrier must arm the
    // name (not fatal) so component flags built later start enabled.
    debug::enableFromList("TestPreArm");
    debug::Flag flag("TestPreArm");
    EXPECT_TRUE(flag.enabled());
    debug::disableFlag("TestPreArm");
}

TEST(DebugFlags, ExplicitRegistryIsIndependent)
{
    debug::Registry local;
    debug::Flag mine("TestLocal", local);
    // The process registry does not know the local flag's name.
    EXPECT_THROW(debug::enableFlag("TestLocal"), FatalError);
    local.enable("TestLocal");
    EXPECT_TRUE(mine.enabled());
}

TEST(DebugFlags, DestructorUnregisters)
{
    {
        debug::Flag flag("TestD");
    }
    // Re-registering the name after destruction is fine.
    EXPECT_NO_THROW(debug::Flag again("TestD"));
}

TEST(DebugFlags, ListIncludesComponentFlags)
{
    // The library's own trace points register lazily; poke one so
    // its flag exists, then check the listing. (MTLB registers on
    // first Mtlb activity — simplest to register a local witness.)
    debug::Flag flag("TestE");
    const auto names = debug::allFlags();
    EXPECT_NE(std::find(names.begin(), names.end(), "TestE"),
              names.end());
}

TEST(DebugFlags, EnableFromCommaList)
{
    debug::Flag a("TestF");
    debug::Flag b("TestG");
    debug::Flag c("TestH");
    debug::enableFromList("TestF,TestH");
    EXPECT_TRUE(a.enabled());
    EXPECT_FALSE(b.enabled());
    EXPECT_TRUE(c.enabled());
}

TEST(DebugFlags, AllTokenEnablesEverything)
{
    debug::Flag a("TestI");
    debug::Flag b("TestJ");
    debug::enableFromList("All");
    EXPECT_TRUE(a.enabled());
    EXPECT_TRUE(b.enabled());
    a.disable();
    b.disable();
}

namespace
{

/** Streamable probe that records whether it was ever formatted. */
struct Probe
{
    bool *flagged;
};

std::ostream &
operator<<(std::ostream &os, const Probe &p)
{
    *p.flagged = true;
    return os;
}

} // namespace

TEST(DebugFlags, PrintfIsSilentWhenDisabled)
{
    debug::Flag flag("TestK");
    // Must not crash or emit through a disabled flag; the lazy
    // message assembly must never run.
    bool assembled = false;
    debugPrintf(flag, Probe{&assembled});
    EXPECT_FALSE(assembled);
    flag.enable();
    debugPrintf(flag, Probe{&assembled});
    EXPECT_TRUE(assembled);
}
