/**
 * @file
 * Tests for the named debug-flag facility.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <ostream>

#include "base/debug.hh"

using namespace mtlbsim;

TEST(DebugFlags, StartDisabled)
{
    debug::Flag flag("TestA");
    EXPECT_FALSE(flag.enabled());
}

TEST(DebugFlags, EnableDisableByName)
{
    debug::Flag flag("TestB");
    debug::enableFlag("TestB");
    EXPECT_TRUE(flag.enabled());
    debug::disableFlag("TestB");
    EXPECT_FALSE(flag.enabled());
}

TEST(DebugFlags, UnknownNameIsFatal)
{
    EXPECT_THROW(debug::enableFlag("NoSuchFlag"), FatalError);
    EXPECT_THROW(debug::disableFlag("NoSuchFlag"), FatalError);
}

TEST(DebugFlags, DuplicateNameIsFatal)
{
    debug::Flag flag("TestC");
    EXPECT_THROW(debug::Flag dup("TestC"), FatalError);
}

TEST(DebugFlags, DestructorUnregisters)
{
    {
        debug::Flag flag("TestD");
    }
    // Re-registering the name after destruction is fine.
    EXPECT_NO_THROW(debug::Flag again("TestD"));
}

TEST(DebugFlags, ListIncludesComponentFlags)
{
    // The library's own trace points register lazily; poke one so
    // its flag exists, then check the listing. (MTLB registers on
    // first Mtlb activity — simplest to register a local witness.)
    debug::Flag flag("TestE");
    const auto names = debug::allFlags();
    EXPECT_NE(std::find(names.begin(), names.end(), "TestE"),
              names.end());
}

TEST(DebugFlags, EnableFromCommaList)
{
    debug::Flag a("TestF");
    debug::Flag b("TestG");
    debug::Flag c("TestH");
    debug::enableFromList("TestF,TestH");
    EXPECT_TRUE(a.enabled());
    EXPECT_FALSE(b.enabled());
    EXPECT_TRUE(c.enabled());
}

TEST(DebugFlags, AllTokenEnablesEverything)
{
    debug::Flag a("TestI");
    debug::Flag b("TestJ");
    debug::enableFromList("All");
    EXPECT_TRUE(a.enabled());
    EXPECT_TRUE(b.enabled());
    a.disable();
    b.disable();
}

namespace
{

/** Streamable probe that records whether it was ever formatted. */
struct Probe
{
    bool *flagged;
};

std::ostream &
operator<<(std::ostream &os, const Probe &p)
{
    *p.flagged = true;
    return os;
}

} // namespace

TEST(DebugFlags, PrintfIsSilentWhenDisabled)
{
    debug::Flag flag("TestK");
    // Must not crash or emit through a disabled flag; the lazy
    // message assembly must never run.
    bool assembled = false;
    debugPrintf(flag, Probe{&assembled});
    EXPECT_FALSE(assembled);
    flag.enable();
    debugPrintf(flag, Probe{&assembled});
    EXPECT_TRUE(assembled);
}
