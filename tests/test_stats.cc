/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"

using namespace mtlbsim;
using namespace mtlbsim::stats;

TEST(Scalar, StartsAtZero)
{
    StatGroup g("g");
    Scalar &s = g.addScalar("s", "a scalar");
    EXPECT_EQ(s.value(), 0.0);
}

TEST(Scalar, IncrementAndAdd)
{
    StatGroup g("g");
    Scalar &s = g.addScalar("s", "");
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
}

TEST(Scalar, AssignAndReset)
{
    StatGroup g("g");
    Scalar &s = g.addScalar("s", "");
    s = 9;
    EXPECT_DOUBLE_EQ(s.value(), 9.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(AverageStat, EmptyIsZero)
{
    StatGroup g("g");
    Average &a = g.addAverage("a", "");
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(AverageStat, TracksMoments)
{
    StatGroup g("g");
    Average &a = g.addAverage("a", "");
    a.sample(2);
    a.sample(4);
    a.sample(9);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 15.0);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(AverageStat, ResetClearsEverything)
{
    StatGroup g("g");
    Average &a = g.addAverage("a", "");
    a.sample(5);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    a.sample(1);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 1.0);
}

TEST(HistogramStat, BucketsSamplesCorrectly)
{
    StatGroup g("g");
    Histogram &h = g.addHistogram("h", "", 0, 10, 4);
    h.sample(-1);       // underflow
    h.sample(0);        // bucket 0
    h.sample(9.99);     // bucket 0
    h.sample(10);       // bucket 1
    h.sample(35);       // bucket 3
    h.sample(40);       // overflow
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.count(), 6u);
}

TEST(HistogramStat, RejectsBadGeometry)
{
    StatGroup g("g");
    EXPECT_THROW(g.addHistogram("h", "", 0, 0, 4), FatalError);
    EXPECT_THROW(g.addHistogram("h", "", 0, 1, 0), FatalError);
}

TEST(FormulaStat, EvaluatesLazily)
{
    StatGroup g("g");
    Scalar &a = g.addScalar("a", "");
    Scalar &b = g.addScalar("b", "");
    Formula &f = g.addFormula("ratio", "", [&] {
        return b.value() ? a.value() / b.value() : 0.0;
    });
    EXPECT_DOUBLE_EQ(f.value(), 0.0);
    a = 6;
    b = 3;
    EXPECT_DOUBLE_EQ(f.value(), 2.0);
}

TEST(StatGroupTest, FindLocatesByName)
{
    StatGroup g("g");
    g.addScalar("hits", "");
    EXPECT_NE(g.find("hits"), nullptr);
    EXPECT_EQ(g.find("misses"), nullptr);
}

TEST(StatGroupTest, ResetAllRecursesIntoChildren)
{
    StatGroup parent("p");
    StatGroup child("c");
    Scalar &ps = parent.addScalar("s", "");
    Scalar &cs = child.addScalar("s", "");
    parent.addChild(&child);
    ps = 1;
    cs = 2;
    parent.resetAll();
    EXPECT_DOUBLE_EQ(ps.value(), 0.0);
    EXPECT_DOUBLE_EQ(cs.value(), 0.0);
}

TEST(StatGroupTest, PrintEmitsPrefixedLines)
{
    StatGroup parent("sys");
    StatGroup child("cache");
    Scalar &s = child.addScalar("hits", "cache hits");
    parent.addChild(&child);
    s = 7;
    std::ostringstream os;
    parent.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("sys.cache.hits"), std::string::npos);
    EXPECT_NE(text.find("7"), std::string::npos);
    EXPECT_NE(text.find("cache hits"), std::string::npos);
}

TEST(StatGroupTest, NullChildPanics)
{
    StatGroup g("g");
    EXPECT_THROW(g.addChild(nullptr), PanicError);
}

TEST(HistogramStat, MeanMatchesSamples)
{
    StatGroup g("g");
    Histogram &h = g.addHistogram("h", "", 0, 1, 10);
    h.sample(1);
    h.sample(2);
    h.sample(3);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(AverageStat, PrintIncludesSubfields)
{
    StatGroup g("g");
    Average &a = g.addAverage("lat", "latency");
    a.sample(4);
    std::ostringstream os;
    g.print(os);
    EXPECT_NE(os.str().find("lat.mean"), std::string::npos);
    EXPECT_NE(os.str().find("lat.count"), std::string::npos);
}
