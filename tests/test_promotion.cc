/**
 * @file
 * Tests for online superpage promotion (§5, Romer-style competitive
 * policy over cheap shadow-backed promotion).
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "sim/system.hh"

using namespace mtlbsim;

namespace
{

constexpr Addr MB = 1024 * 1024;

SystemConfig
promoConfig(bool promotion, bool honor_explicit = false)
{
    SystemConfig c;
    c.installedBytes = 64 * MB;
    c.kernel.onlinePromotion = promotion;
    c.kernel.honorExplicitRemap = honor_explicit;
    return c;
}

/** Hammer a small set of pages so their chunks accumulate misses. */
void
hammerPages(System &sys, Addr base, unsigned pages, unsigned rounds)
{
    // Touch few lines per page, choosing each page's line offsets so
    // that pages sharing a cache color use disjoint sets: the hot
    // lines all coexist in the 512 KB direct-mapped cache, while the
    // page count cycles far beyond the TLB's reach — the sparse
    // structure superpages are for.
    for (unsigned r = 0; r < rounds; ++r) {
        for (unsigned p = 0; p < pages; ++p) {
            sys.cpu().execute(2);
            const unsigned offset = ((p >> 7) * 8 + (r % 8)) * 32;
            sys.cpu().load(base + Addr{p} * basePageSize + offset);
        }
    }
}

} // namespace

TEST(Promotion, HotChunkGetsPromoted)
{
    System sys(promoConfig(true));
    sys.kernel().addressSpace().addRegion("data", 0x10000000, 4 * MB,
                                          {});
    // 512 pages cycled against a 96-entry TLB: constant misses.
    hammerPages(sys, 0x10000000, 512, 40);
    EXPECT_GT(sys.kernel().addressSpace().superpages().size(), 0u);
    // Promoted chunks are the configured 64 KB class.
    for (const auto &[vbase, sp] :
         sys.kernel().addressSpace().superpages())
        EXPECT_EQ(sp.sizeClass, 2u);
}

TEST(Promotion, ColdDataStaysBasePaged)
{
    System sys(promoConfig(true));
    sys.kernel().addressSpace().addRegion("data", 0x10000000, 4 * MB,
                                          {});
    // Touch each page a handful of times: few misses per chunk, so
    // no chunk earns its promotion.
    hammerPages(sys, 0x10000000, 64, 1);
    EXPECT_TRUE(sys.kernel().addressSpace().superpages().empty());
}

TEST(Promotion, PromotionReducesSubsequentMissTime)
{
    // Promotion pays for itself only over a long enough run — the
    // competitive policy's premise. 300 rounds give the promoted
    // superpages time to amortise the remap cost.
    System with(promoConfig(true));
    System without(promoConfig(false));
    for (System *sys : {&with, &without}) {
        sys->kernel().addressSpace().addRegion("data", 0x10000000,
                                               4 * MB, {});
        hammerPages(*sys, 0x10000000, 512, 300);
    }
    EXPECT_LT(with.tlbMissCycles(), without.tlbMissCycles());
    EXPECT_LT(with.totalCycles(), without.totalCycles());
}

TEST(Promotion, ExplicitRemapIgnoredWhenDisabled)
{
    System sys(promoConfig(true, false));
    sys.kernel().addressSpace().addRegion("data", 0x10000000, MB, {});
    sys.cpu().remap(0x10000000, MB);    // should be a no-op
    EXPECT_TRUE(sys.kernel().addressSpace().superpages().empty());
}

TEST(Promotion, ExplicitRemapHonoredWhenEnabled)
{
    System sys(promoConfig(true, true));
    sys.kernel().addressSpace().addRegion("data", 0x10000000, MB, {});
    sys.cpu().remap(0x10000000, MB);
    EXPECT_FALSE(sys.kernel().addressSpace().superpages().empty());
}

TEST(Promotion, RespectsRegionBoundaries)
{
    // A chunk straddling the end of a region must never promote.
    System sys(promoConfig(true));
    // 48 KB region: not even one full 64 KB chunk.
    sys.kernel().addressSpace().addRegion("tiny", 0x10000000,
                                          48 * 1024, {});
    hammerPages(sys, 0x10000000, 12, 500);
    EXPECT_TRUE(sys.kernel().addressSpace().superpages().empty());
}

TEST(Promotion, TranslationsCorrectAfterPromotion)
{
    System sys(promoConfig(true));
    auto &as = sys.kernel().addressSpace();
    as.addRegion("data", 0x10000000, 4 * MB, {});

    // Record frames before promotion has had a chance.
    hammerPages(sys, 0x10000000, 64, 1);
    std::vector<Addr> frames;
    for (unsigned p = 0; p < 64; ++p)
        frames.push_back(as.frameOf(0x10000000 + Addr{p} *
                                                     basePageSize));

    // Force promotions.
    hammerPages(sys, 0x10000000, 512, 60);
    ASSERT_FALSE(as.superpages().empty());

    // Every page still resolves to its original frame through
    // TLB -> MTLB.
    for (unsigned p = 0; p < 64; ++p) {
        const Addr va = 0x10000000 + Addr{p} * basePageSize;
        sys.kernel().handleTlbMiss(va, AccessType::Read,
                                   sys.cpu().now());
        const auto tr =
            sys.tlb().lookup(va, AccessType::Read, AccessMode::User);
        ASSERT_TRUE(tr.hit);
        Addr real = tr.paddr;
        if (sys.physmap().classify(tr.paddr) == AddrKind::Shadow) {
            const auto mr = sys.memsys().mmc().service(
                MmcOp::SharedFill, tr.paddr);
            ASSERT_FALSE(mr.fault);
            real = mr.realAddr;
        }
        EXPECT_EQ(real >> basePageShift, frames[p]) << "page " << p;
    }
}

TEST(Promotion, NoPromotionWithoutMtlb)
{
    SystemConfig c = promoConfig(true);
    c.mtlbEnabled = false;
    System sys(c);
    sys.kernel().addressSpace().addRegion("data", 0x10000000, 4 * MB,
                                          {});
    hammerPages(sys, 0x10000000, 512, 60);
    EXPECT_TRUE(sys.kernel().addressSpace().superpages().empty());
}
