/**
 * @file
 * Unit tests for the dispersing physical frame allocator.
 */

#include <gtest/gtest.h>

#include <set>

#include "os/frame_alloc.hh"

using namespace mtlbsim;

TEST(FrameAllocTest, AllocatesUniqueFramesInRange)
{
    FrameAllocator alloc(100, 50);
    std::set<Addr> seen;
    for (int i = 0; i < 50; ++i) {
        const Addr pfn = alloc.allocate();
        EXPECT_GE(pfn, 100u);
        EXPECT_LT(pfn, 150u);
        EXPECT_TRUE(seen.insert(pfn).second) << "duplicate frame";
    }
}

TEST(FrameAllocTest, ExhaustionIsFatal)
{
    FrameAllocator alloc(0, 2);
    alloc.allocate();
    alloc.allocate();
    EXPECT_THROW(alloc.allocate(), FatalError);
}

TEST(FrameAllocTest, FreeRecycles)
{
    FrameAllocator alloc(0, 1);
    const Addr pfn = alloc.allocate();
    EXPECT_EQ(alloc.numFree(), 0u);
    alloc.free(pfn);
    EXPECT_EQ(alloc.numFree(), 1u);
    EXPECT_EQ(alloc.allocate(), pfn);
}

TEST(FrameAllocTest, FreeOutOfRangePanics)
{
    FrameAllocator alloc(100, 10);
    EXPECT_THROW(alloc.free(99), PanicError);
    EXPECT_THROW(alloc.free(110), PanicError);
}

TEST(FrameAllocTest, FramesAreDispersed)
{
    // The paper's premise (§2.1): frames handed out over time are
    // not contiguous. Count adjacent-PFN pairs in allocation order;
    // with a genuine shuffle of 4096 frames this is tiny.
    FrameAllocator alloc(0, 4096);
    Addr prev = alloc.allocate();
    unsigned adjacent = 0;
    for (int i = 1; i < 4096; ++i) {
        const Addr pfn = alloc.allocate();
        if (pfn == prev + 1)
            ++adjacent;
        prev = pfn;
    }
    EXPECT_LT(adjacent, 40u);
}

TEST(FrameAllocTest, DeterministicForFixedSeed)
{
    FrameAllocator a(0, 64, 7), b(0, 64, 7);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(a.allocate(), b.allocate());
}

TEST(FrameAllocTest, DifferentSeedsDisperseDifferently)
{
    FrameAllocator a(0, 64, 7), b(0, 64, 8);
    bool differs = false;
    for (int i = 0; i < 64; ++i)
        differs |= a.allocate() != b.allocate();
    EXPECT_TRUE(differs);
}

TEST(FrameAllocTest, ZeroFramesIsFatal)
{
    EXPECT_THROW(FrameAllocator(0, 0), FatalError);
}
