/**
 * @file
 * Unit tests for the Runway-like bus model.
 */

#include <gtest/gtest.h>

#include "bus/bus.hh"

using namespace mtlbsim;

namespace
{
Bus
makeBus(stats::StatGroup &g)
{
    return Bus(BusConfig{}, g);
}
}

TEST(BusTest, ReadRequestCost)
{
    stats::StatGroup g("t");
    Bus bus = makeBus(g);
    // arb(1) + addr(1) = 2 bus cycles = 4 CPU cycles.
    EXPECT_EQ(bus.request(BusOp::ReadShared, 0), 4u);
}

TEST(BusTest, WriteBackCarriesData)
{
    stats::StatGroup g("t");
    Bus bus = makeBus(g);
    // arb(1) + addr(1) + data(4) = 6 bus cycles = 12 CPU cycles.
    EXPECT_EQ(bus.request(BusOp::WriteBack, 0), 12u);
}

TEST(BusTest, UncachedCarriesOneWord)
{
    stats::StatGroup g("t");
    Bus bus = makeBus(g);
    EXPECT_EQ(bus.request(BusOp::Uncached, 0), 6u);
}

TEST(BusTest, DataReturnCost)
{
    stats::StatGroup g("t");
    Bus bus = makeBus(g);
    EXPECT_EQ(bus.dataReturn(0), 8u);
}

TEST(BusTest, BackToBackRequestsQueue)
{
    stats::StatGroup g("t");
    Bus bus = makeBus(g);
    EXPECT_EQ(bus.request(BusOp::ReadShared, 0), 4u);
    // Second request at time 0 must wait for the first to clear.
    EXPECT_EQ(bus.request(BusOp::ReadShared, 0), 8u);
}

TEST(BusTest, NoQueueingWhenIdle)
{
    stats::StatGroup g("t");
    Bus bus = makeBus(g);
    bus.request(BusOp::ReadShared, 0);
    // By cycle 100 the bus is long idle.
    EXPECT_EQ(bus.request(BusOp::ReadShared, 100), 4u);
}

TEST(BusTest, PartialOverlapQueuesPartially)
{
    stats::StatGroup g("t");
    Bus bus = makeBus(g);
    bus.request(BusOp::ReadShared, 0);      // busy until 4
    EXPECT_EQ(bus.request(BusOp::ReadShared, 2), 2u + 4u);
}

TEST(BusTest, ReadExclusiveSameCostAsShared)
{
    stats::StatGroup g("t");
    Bus bus = makeBus(g);
    const Cycles shared = bus.request(BusOp::ReadShared, 100);
    const Cycles exclusive = bus.request(BusOp::ReadExclusive, 200);
    EXPECT_EQ(shared, exclusive);
}
