/**
 * @file
 * Workload tests: each of the five §3.1 benchmarks runs at small
 * scale on MTLB and non-MTLB machines, with its internal honesty
 * checks (sorted output, round-trip fidelity, finite values) active.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace mtlbsim;

namespace
{

constexpr Addr MB = 1024 * 1024;

SystemConfig
config(bool mtlb, unsigned tlb_entries = 96)
{
    SystemConfig c;
    c.installedBytes = 128 * MB;
    c.mtlbEnabled = mtlb;
    c.tlbEntries = tlb_entries;
    return c;
}

struct RunOutcome
{
    Cycles total;
    Cycles missCycles;
    std::size_t superpages;
};

RunOutcome
runWorkload(const std::string &name, bool mtlb, double scale,
            unsigned tlb_entries = 96)
{
    System sys(config(mtlb, tlb_entries));
    auto w = makeWorkload(name, scale);
    w->setup(sys);
    w->run(sys);
    return {sys.totalCycles(), sys.tlbMissCycles(),
            sys.kernel().addressSpace().superpages().size()};
}

} // namespace

class WorkloadSmoke : public ::testing::TestWithParam<std::string>
{};

TEST_P(WorkloadSmoke, RunsOnMtlbSystem)
{
    const auto r = runWorkload(GetParam(), true, 0.05);
    EXPECT_GT(r.total, 0u);
    EXPECT_GT(r.superpages, 0u);    // superpage creation happened
}

TEST_P(WorkloadSmoke, RunsOnConventionalSystem)
{
    const auto r = runWorkload(GetParam(), false, 0.05);
    EXPECT_GT(r.total, 0u);
    EXPECT_EQ(r.superpages, 0u);    // no shadow support, no superpages
}

TEST_P(WorkloadSmoke, MtlbNeverMuchSlower)
{
    // Scale 0.25 keeps the runs TLB-relevant and amortises the one-
    // time remap cost; §3.4 notes that short runs exaggerate
    // startup/remap costs, hence the loose bound.
    const auto base = runWorkload(GetParam(), false, 0.25);
    const auto with = runWorkload(GetParam(), true, 0.25);
    EXPECT_LT(static_cast<double>(with.total),
              1.08 * static_cast<double>(base.total))
        << GetParam() << " slowed down by the MTLB";
}

TEST_P(WorkloadSmoke, MtlbCutsTlbMissTimeAt64Entries)
{
    const auto base = runWorkload(GetParam(), false, 0.1, 64);
    const auto with = runWorkload(GetParam(), true, 0.1, 64);
    EXPECT_LT(with.missCycles, base.missCycles)
        << GetParam() << " TLB miss time did not improve";
}

TEST_P(WorkloadSmoke, DeterministicAcrossRuns)
{
    const auto a = runWorkload(GetParam(), true, 0.05);
    const auto b = runWorkload(GetParam(), true, 0.05);
    EXPECT_EQ(a.total, b.total) << GetParam() << " not reproducible";
}

INSTANTIATE_TEST_SUITE_P(AllFive, WorkloadSmoke,
                         ::testing::ValuesIn(allWorkloadNames()),
                         [](const auto &info) { return info.param; });

TEST(WorkloadFactory, RejectsUnknownNames)
{
    EXPECT_THROW(makeWorkload("quake", 1.0), FatalError);
}

TEST(WorkloadFactory, RejectsBadScale)
{
    EXPECT_THROW(makeWorkload("radix", 0.0), FatalError);
    EXPECT_THROW(makeWorkload("radix", 1.5), FatalError);
}

TEST(WorkloadFactory, ListsFiveBenchmarks)
{
    EXPECT_EQ(allWorkloadNames().size(), 5u);
}

TEST(WorkloadDetail, RadixMapsPaperFootprintAtFullConfig)
{
    // Checked without running: construct at scale 1 and inspect the
    // configured footprint (§3.1: 8,437,760 bytes).
    System sys(config(true));
    auto w = makeWorkload("radix", 1.0);
    // setup() would run the full init; instead verify the documented
    // constant is what the full-scale config produces. The cheap way
    // is a tiny run at full key count being too slow for a unit
    // test, so this test only asserts the factory wiring.
    EXPECT_EQ(w->name(), "radix");
}

TEST(WorkloadDetail, Em3dCreatesSuperpagesOnlyAfterInit)
{
    // em3d remaps after initialisation (§3.3): the remap stats must
    // show no zero-fill happening inside remap for em3d.
    System sys(config(true));
    auto w = makeWorkload("em3d", 0.05);
    w->setup(sys);
    // All pages of the remapped region were materialised by the
    // initialisation writes, before remap ran.
    EXPECT_GT(sys.kernel().addressSpace().superpages().size(), 0u);
    const Cycles remap_total = sys.kernel().remapTotalCycles();
    const Cycles remap_flush = sys.kernel().remapFlushCycles();
    // Flush dominates remap cost (§3.3: 1.50 M of 1.66 M cycles).
    EXPECT_GT(remap_flush, remap_total / 2);
}

TEST(WorkloadDetail, VortexAllocatesThroughSbrkOnly)
{
    System sys(config(true));
    auto w = makeWorkload("vortex", 0.02);
    w->setup(sys);
    // Superpages exist and all lie inside the heap region.
    const VmRegion *heap =
        sys.kernel().addressSpace().findRegionByName("heap");
    ASSERT_NE(heap, nullptr);
    for (const auto &[vbase, sp] :
         sys.kernel().addressSpace().superpages()) {
        EXPECT_GE(sp.vbase, heap->base);
        EXPECT_LE(sp.vbase + sp.size(), heap->end());
    }
}

TEST(WorkloadDetail, CompressRemapsFourRegions)
{
    System sys(config(true));
    auto w = makeWorkload("compress95", 0.05);
    w->setup(sys);
    // Tables + 3 buffers were remapped: superpages from 4 distinct
    // regions.
    const auto &sps = sys.kernel().addressSpace().superpages();
    EXPECT_GE(sps.size(), 4u);
}

TEST(WorkloadDetail, Cc1TextStaysBasePaged)
{
    // §3.1: for cc1 all superpage creation is via sbrk(); the text
    // segment is never remapped.
    System sys(config(true));
    auto w = makeWorkload("cc1", 0.05);
    w->setup(sys);
    const VmRegion *text =
        sys.kernel().addressSpace().findRegionByName("text");
    ASSERT_NE(text, nullptr);
    for (const auto &[vbase, sp] :
         sys.kernel().addressSpace().superpages()) {
        EXPECT_FALSE(sp.vbase >= text->base &&
                     sp.vbase < text->end());
    }
}

/* ------------------------------------------------------------------ */
/* Full-configuration footprints (the paper's §3.1 numbers). These    */
/* run setup() at scale 1.0, so they are the slowest unit tests.      */
/* ------------------------------------------------------------------ */

TEST(WorkloadFootprint, RadixMapsThePaperByteCount)
{
    // §3.1: 8,437,760 bytes mapped, 14 superpages for the paper's
    // heap alignment (ours lands within a couple due to the walk's
    // alignment-dependent split).
    System sys(config(true));
    auto w = makeWorkload("radix", 1.0);
    w->setup(sys);
    Addr covered = 0;
    for (const auto &[vbase, sp] :
         sys.kernel().addressSpace().superpages())
        covered += sp.size();
    EXPECT_GE(covered, 8'437'760u - 16 * 1024);
    EXPECT_LE(covered, 8'437'760u + 16 * 1024);
    const auto n = sys.kernel().addressSpace().superpages().size();
    EXPECT_GE(n, 10u);
    EXPECT_LE(n, 18u);
}

TEST(WorkloadFootprint, Em3dMapsThePaperPageCount)
{
    // §3.3: em3d remaps ~1,120 pages of initialised dynamic memory
    // in 16 superpages (ours: 14-16, alignment dependent).
    System sys(config(true));
    auto w = makeWorkload("em3d", 1.0);
    w->setup(sys);
    const auto pages = sys.kernel().remapPages();
    EXPECT_GE(pages, 1'090u);
    EXPECT_LE(pages, 1'180u);
    const auto n = sys.kernel().addressSpace().superpages().size();
    EXPECT_GE(n, 12u);
    EXPECT_LE(n, 18u);
}

TEST(WorkloadFootprint, CompressTableRegionMatchesPaper)
{
    // §3.1: the hash/code-table region is 557,056 bytes; each buffer
    // remap is 999,424 bytes; four regions are remapped in total.
    System sys(config(true));
    auto w = makeWorkload("compress95", 1.0);
    w->setup(sys);
    Addr covered = 0;
    for (const auto &[vbase, sp] :
         sys.kernel().addressSpace().superpages())
        covered += sp.size();
    // 557,056 + 3 x 999,424 = 3,555,328; superpage rounding keeps us
    // within one 16 KB grain per region.
    EXPECT_GE(covered, 3'555'328u - 4 * 16 * 1024);
    EXPECT_LE(covered, 3'555'328u + 4 * 16 * 1024);
}

/* ------------------------------------------------------------------ */
/* oltp: the §1/§6 commercial-projection workload (not one of the     */
/* paper's five, so tested separately).                                */
/* ------------------------------------------------------------------ */

TEST(OltpWorkload, RunsOnBothMachines)
{
    const auto base = runWorkload("oltp", false, 0.02);
    const auto with = runWorkload("oltp", true, 0.02);
    EXPECT_GT(base.total, 0u);
    EXPECT_GT(with.total, 0u);
    EXPECT_GT(with.superpages, 0u);
    EXPECT_LT(with.missCycles, base.missCycles);
}

TEST(OltpWorkload, NotPartOfThePaperFive)
{
    const auto &names = allWorkloadNames();
    EXPECT_EQ(std::find(names.begin(), names.end(), "oltp"),
              names.end());
    EXPECT_NO_THROW(makeWorkload("oltp", 0.02));
}

TEST(OltpWorkload, Deterministic)
{
    const auto a = runWorkload("oltp", true, 0.02);
    const auto b = runWorkload("oltp", true, 0.02);
    EXPECT_EQ(a.total, b.total);
}
