/**
 * @file
 * Tests for the MMC-resident stream buffers (§6 future work).
 */

#include <gtest/gtest.h>

#include "mmc/memsys.hh"
#include "mmc/stream_buffer.hh"
#include "sim/system.hh"

using namespace mtlbsim;

namespace
{

constexpr Addr MB = 1024 * 1024;

StreamBufferConfig
enabled(unsigned buffers = 4, unsigned depth = 4)
{
    StreamBufferConfig c;
    c.enabled = true;
    c.numBuffers = buffers;
    c.depth = depth;
    return c;
}

} // namespace

TEST(StreamBufferTest, DisabledNeverHits)
{
    stats::StatGroup g("t");
    StreamBufferBank bank(StreamBufferConfig{}, g);
    for (Addr a = 0; a < 1024; a += 32)
        EXPECT_FALSE(bank.lookup(a));
    EXPECT_EQ(bank.hits(), 0u);
}

TEST(StreamBufferTest, SequentialStreamHitsAfterDetection)
{
    stats::StatGroup g("t");
    StreamBufferBank bank(enabled(), g);
    // First two misses establish the stream; from the third line on
    // the buffer serves.
    EXPECT_FALSE(bank.lookup(0x1000));
    EXPECT_FALSE(bank.lookup(0x1020));
    bank.drainPrefetches();
    EXPECT_TRUE(bank.lookup(0x1040));
    EXPECT_TRUE(bank.lookup(0x1060));
    EXPECT_TRUE(bank.lookup(0x1080));
}

TEST(StreamBufferTest, RandomAccessesNeverAllocate)
{
    stats::StatGroup g("t");
    StreamBufferBank bank(enabled(), g);
    Random rng(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(bank.lookup(rng.below(1 << 20) << 7));
    EXPECT_EQ(bank.hits(), 0u);
}

TEST(StreamBufferTest, MultipleConcurrentStreams)
{
    stats::StatGroup g("t");
    StreamBufferBank bank(enabled(4), g);
    // Interleave four sequential streams; after detection each keeps
    // hitting despite the interleaving.
    const Addr bases[] = {0x10000, 0x20000, 0x30000, 0x40000};
    // Detection pass: two sequential misses each. Streams must be
    // consecutive in the miss history, so run them one at a time.
    for (const Addr base : bases) {
        bank.lookup(base);
        bank.lookup(base + 32);
    }
    unsigned hit_count = 0;
    for (unsigned i = 2; i < 10; ++i) {
        for (const Addr base : bases) {
            if (bank.lookup(base + i * 32))
                ++hit_count;
        }
    }
    EXPECT_EQ(hit_count, 32u);
}

TEST(StreamBufferTest, LruVictimOnFifthStream)
{
    stats::StatGroup g("t");
    StreamBufferBank bank(enabled(2), g);
    // Allocate streams A and B, then C: A (least recently used) is
    // the victim.
    bank.lookup(0x10000);
    bank.lookup(0x10020);       // A allocated
    bank.lookup(0x20000);
    bank.lookup(0x20020);       // B allocated
    EXPECT_TRUE(bank.lookup(0x20040));  // B used (A is LRU)
    bank.lookup(0x30000);
    bank.lookup(0x30020);       // C replaces A
    EXPECT_FALSE(bank.lookup(0x10040)); // A is gone
    EXPECT_TRUE(bank.lookup(0x30040));  // C lives
}

TEST(StreamBufferTest, InvalidateAllForgetsStreams)
{
    stats::StatGroup g("t");
    StreamBufferBank bank(enabled(), g);
    bank.lookup(0x1000);
    bank.lookup(0x1020);
    bank.invalidateAll();
    EXPECT_FALSE(bank.lookup(0x1040));
}

TEST(StreamBufferTest, PrefetchesAreBounded)
{
    stats::StatGroup g("t");
    StreamBufferBank bank(enabled(4, 4), g);
    bank.lookup(0x1000);
    bank.lookup(0x1020);
    const auto pf = bank.drainPrefetches();
    EXPECT_EQ(pf.size(), 4u);           // depth lines primed
    EXPECT_TRUE(bank.drainPrefetches().empty());
}

TEST(StreamBufferMmc, SequentialFillsGetFaster)
{
    // End-to-end: a sequential fill stream through the MMC costs
    // less per fill once the buffers kick in.
    PhysMap map(64 * MB, {0x80000000, 512 * MB}, 32);
    MmcConfig config;
    config.streamBuffers = enabled();
    stats::StatGroup g("t");
    Mmc mmc(config, map, g);

    Cycles first_two = 0, later = 0;
    for (unsigned i = 0; i < 16; ++i) {
        const auto r = mmc.service(MmcOp::SharedFill,
                                   0x100000 + i * cacheLineSize);
        (i < 2 ? first_two : later) += r.mmcCycles;
    }
    EXPECT_LT(later / 14, first_two / 2);
    EXPECT_GT(mmc.streamBuffers().hits(), 10u);
}

TEST(StreamBufferMmc, WorksDownstreamOfTheMtlb)
{
    // A sequential stream through *shadow* addresses must also hit:
    // the buffers operate on post-translation real addresses (§6's
    // point about putting them in the MMC).
    PhysMap map(64 * MB, {0x80000000, 512 * MB}, 32);
    MmcConfig config;
    config.streamBuffers = enabled();
    stats::StatGroup g("t");
    Mmc mmc(config, map, g);

    // Shadow pages 0 and 1 -> two *consecutive* real frames, so the
    // real-address stream crosses the page boundary seamlessly.
    mmc.setShadowMapping(0, 0x1000);
    mmc.setShadowMapping(1, 0x1001);
    unsigned hits = 0;
    for (Addr off = 0; off < 2 * basePageSize; off += cacheLineSize) {
        mmc.service(MmcOp::SharedFill, 0x80000000 + off);
    }
    hits = static_cast<unsigned>(mmc.streamBuffers().hits());
    EXPECT_GT(hits, 200u);  // 256 lines, nearly all buffered
}

TEST(StreamBufferSystem, SequentialWorkloadSpeedsUp)
{
    auto run = [](bool buffers) {
        SystemConfig config;
        config.installedBytes = 64 * MB;
        config.streamBuffers = enabled();
        config.streamBuffers.enabled = buffers;
        System sys(config);
        sys.kernel().addressSpace().addRegion("data", 0x10000000,
                                              4 * MB, {});
        sys.cpu().remap(0x10000000, 4 * MB);
        for (Addr off = 0; off < 4 * MB; off += 32) {
            sys.cpu().execute(2);
            sys.cpu().load(0x10000000 + off);
        }
        return sys.totalCycles();
    };
    EXPECT_LT(run(true), run(false));
}
