/**
 * @file
 * Unit tests for the per-process address space.
 */

#include <gtest/gtest.h>

#include "os/address_space.hh"

using namespace mtlbsim;

namespace
{
AddressSpace
makeSpace()
{
    return AddressSpace(0x00400000);
}
}

TEST(AddressSpaceTest, RegionLookup)
{
    AddressSpace as = makeSpace();
    as.addRegion("text", 0x400000, 0x10000, {false, true});
    as.addRegion("data", 0x10000000, 0x100000, {});
    EXPECT_EQ(as.findRegion(0x400000)->name, "text");
    EXPECT_EQ(as.findRegion(0x10000000)->name, "data");
    EXPECT_EQ(as.findRegion(0x500000), nullptr);
    EXPECT_EQ(as.findRegionByName("data")->base, 0x10000000u);
    EXPECT_EQ(as.findRegionByName("nope"), nullptr);
}

TEST(AddressSpaceTest, OverlappingRegionsRejected)
{
    AddressSpace as = makeSpace();
    as.addRegion("a", 0x1000, 0x2000, {});
    EXPECT_THROW(as.addRegion("b", 0x2000, 0x2000, {}), FatalError);
    EXPECT_NO_THROW(as.addRegion("c", 0x3000, 0x1000, {}));
}

TEST(AddressSpaceTest, UnalignedRegionsRejected)
{
    AddressSpace as = makeSpace();
    EXPECT_THROW(as.addRegion("a", 0x1001, 0x1000, {}), FatalError);
    EXPECT_THROW(as.addRegion("a", 0x1000, 0x1001, {}), FatalError);
    EXPECT_THROW(as.addRegion("a", 0x1000, 0, {}), FatalError);
}

TEST(AddressSpaceTest, GrowRegion)
{
    AddressSpace as = makeSpace();
    as.addRegion("heap", 0x1000, 0x1000, {});
    as.growRegion("heap", 0x3000);
    EXPECT_TRUE(as.findRegion(0x3fff) != nullptr);
    EXPECT_THROW(as.growRegion("heap", 0x1000), FatalError);  // shrink
    EXPECT_THROW(as.growRegion("nope", 0x1000), FatalError);
}

TEST(AddressSpaceTest, GrowIntoNeighbourRejected)
{
    AddressSpace as = makeSpace();
    as.addRegion("heap", 0x1000, 0x1000, {});
    as.addRegion("wall", 0x4000, 0x1000, {});
    EXPECT_THROW(as.growRegion("heap", 0x4000), FatalError);
}

TEST(AddressSpaceTest, FrameInstallAndRemove)
{
    AddressSpace as = makeSpace();
    EXPECT_FALSE(as.isPagePresent(0x5000));
    as.installFrame(0x5000, 0x1234);
    EXPECT_TRUE(as.isPagePresent(0x5123));  // same page
    EXPECT_EQ(as.frameOf(0x5fff), 0x1234u);
    EXPECT_EQ(as.removeFrame(0x5000), 0x1234u);
    EXPECT_FALSE(as.isPagePresent(0x5000));
}

TEST(AddressSpaceTest, DoubleInstallPanics)
{
    AddressSpace as = makeSpace();
    as.installFrame(0x5000, 1);
    EXPECT_THROW(as.installFrame(0x5000, 2), PanicError);
}

TEST(AddressSpaceTest, FrameOfAbsentPagePanics)
{
    AddressSpace as = makeSpace();
    EXPECT_THROW(as.frameOf(0x5000), PanicError);
    EXPECT_THROW(as.removeFrame(0x5000), PanicError);
}

TEST(AddressSpaceTest, SuperpageRecords)
{
    AddressSpace as = makeSpace();
    as.addSuperpage({0x400000, 0x80000000, 4});
    const ShadowSuperpage *sp = as.findSuperpage(0x4abcde);
    ASSERT_NE(sp, nullptr);
    EXPECT_EQ(sp->vbase, 0x400000u);
    EXPECT_EQ(sp->numBasePages(), 256u);
    EXPECT_EQ(as.findSuperpage(0x3fffff), nullptr);
    EXPECT_EQ(as.findSuperpage(0x500000), nullptr);
}

TEST(AddressSpaceTest, AdjacentSuperpagesResolve)
{
    AddressSpace as = makeSpace();
    as.addSuperpage({0x400000, 0x80000000, 4});     // 1 MB
    as.addSuperpage({0x500000, 0x80100000, 4});     // next 1 MB
    EXPECT_EQ(as.findSuperpage(0x4fffff)->vbase, 0x400000u);
    EXPECT_EQ(as.findSuperpage(0x500000)->vbase, 0x500000u);
}

TEST(AddressSpaceTest, SuperpageAlignmentEnforced)
{
    AddressSpace as = makeSpace();
    EXPECT_THROW(as.addSuperpage({0x401000, 0x80000000, 4}),
                 FatalError);
    EXPECT_THROW(as.addSuperpage({0x400000, 0x80001000, 4}),
                 FatalError);
}

TEST(AddressSpaceTest, DuplicateSuperpagePanics)
{
    AddressSpace as = makeSpace();
    as.addSuperpage({0x400000, 0x80000000, 4});
    EXPECT_THROW(as.addSuperpage({0x400000, 0x80100000, 4}),
                 PanicError);
}

TEST(AddressSpaceTest, RemoveSuperpage)
{
    AddressSpace as = makeSpace();
    as.addSuperpage({0x400000, 0x80000000, 4});
    as.removeSuperpage(0x400000);
    EXPECT_EQ(as.findSuperpage(0x400000), nullptr);
    EXPECT_THROW(as.removeSuperpage(0x400000), PanicError);
}

TEST(AddressSpaceTest, PageTableEntryAddresses)
{
    AddressSpace as = makeSpace();
    // L1 entries live in the first pool page.
    EXPECT_EQ(as.l1EntryAddr(0), 0x00400000u);
    EXPECT_EQ(as.l1EntryAddr(0x00400000), 0x00400004u);
    // L2 nodes are distinct per 4 MB of VA and allocated on demand.
    const Addr l2a = as.l2EntryAddr(0x00000000);
    const Addr l2b = as.l2EntryAddr(0x00400000);
    EXPECT_NE(pageBase(l2a), pageBase(l2b));
    // Same VA always maps to the same entry address.
    EXPECT_EQ(as.l2EntryAddr(0x00000000), l2a);
    // Adjacent pages get adjacent entries.
    EXPECT_EQ(as.l2EntryAddr(0x00001000), l2a + 4);
}

TEST(AddressSpaceTest, PresentPageCount)
{
    AddressSpace as = makeSpace();
    as.installFrame(0x1000, 1);
    as.installFrame(0x2000, 2);
    EXPECT_EQ(as.numPresentPages(), 2u);
}
