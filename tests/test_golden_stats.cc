/**
 * @file
 * Golden-stats regression tests: re-run the five paper workloads on
 * the configs/paper.cfg machine at the recorded scale and compare
 * every statistic against the committed baselines in tests/golden/.
 * Any out-of-tolerance drift — a changed counter, a missing stat, an
 * unexpected new one — fails with a per-stat report.
 *
 * To re-record after a change that legitimately moves the numbers:
 *
 *   build/tools/sweep --matrix golden --config configs/paper.cfg \
 *       --scale 0.05 --record --golden-dir tests/golden
 *
 * and commit the diff together with the change (and say why).
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/config_parser.hh"
#include "stats/golden.hh"
#include "sweep/matrix.hh"
#include "sweep/sweep.hh"

using namespace mtlbsim;
using namespace mtlbsim::stats;

namespace
{

/** Must match the scale the committed baselines were recorded at. */
constexpr double kGoldenScale = 0.05;

const std::string kRepoRoot = MTLBSIM_REPO_ROOT;

/** Tolerances: counters must match exactly; derived floating-point
 *  stats get a hair of slack for cross-compiler rounding. */
ToleranceSpec
goldenTolerances()
{
    ToleranceSpec spec;
    spec.fallback = {0.0, 0.0};
    const Tolerance fp{1e-9, 1e-12};
    spec.overrides.emplace_back("*.mean", fp);
    spec.overrides.emplace_back("*_rate", fp);
    spec.overrides.emplace_back("*fraction*", fp);
    spec.overrides.emplace_back("*avg*", fp);
    spec.overrides.emplace_back("meta.scale", fp);
    return spec;
}

class GoldenStats : public ::testing::TestWithParam<std::string>
{
};

} // namespace

TEST_P(GoldenStats, MatchesCommittedBaseline)
{
    const std::string workload = GetParam();

    ConfigParser parser;
    parser.parseFile(kRepoRoot + "/configs/paper.cfg");

    const auto matrix =
        sweep::goldenMatrix(kGoldenScale, parser.config());
    const auto result =
        sweep::SweepRunner::runOne(matrix.job(workload));
    ASSERT_TRUE(result.ok) << result.error;

    const auto golden = readGoldenFile(
        kRepoRoot + "/tests/golden/" + workload + ".json");
    const auto diffs = compareGolden(
        golden, sweep::resultToJson(result), goldenTolerances());

    std::string report;
    for (const auto &d : diffs)
        report += "  " + d.describe() + "\n";
    EXPECT_TRUE(diffs.empty())
        << workload << " drifted from tests/golden/" << workload
        << ".json (" << diffs.size() << " stats):\n" << report
        << "If the change legitimately moves the numbers, re-record "
        << "with tools/sweep --record (see file header).";
}

INSTANTIATE_TEST_SUITE_P(
    PaperWorkloads, GoldenStats,
    ::testing::Values("compress95", "vortex", "radix", "em3d", "cc1",
                      "multicore_mix"),
    [](const auto &info) { return info.param; });
