/**
 * @file
 * Tests for the key=value configuration layer.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sim/config_parser.hh"

using namespace mtlbsim;

TEST(ConfigParserTest, DefaultsArePaperMachine)
{
    ConfigParser parser;
    const SystemConfig &c = parser.config();
    EXPECT_EQ(c.tlbEntries, 96u);
    EXPECT_TRUE(c.mtlbEnabled);
    EXPECT_EQ(c.mtlb.numEntries, 128u);
    EXPECT_EQ(c.mtlb.associativity, 2u);
    EXPECT_EQ(c.cache.sizeBytes, 512u * 1024);
}

TEST(ConfigParserTest, SetIndividualKeys)
{
    ConfigParser parser;
    parser.set("tlb.entries", "64");
    parser.set("mtlb.enabled", "false");
    parser.set("mem.installed_mb", "128");
    parser.set("cache.size_kb", "256");
    EXPECT_EQ(parser.config().tlbEntries, 64u);
    EXPECT_FALSE(parser.config().mtlbEnabled);
    EXPECT_EQ(parser.config().installedBytes, Addr{128} << 20);
    EXPECT_EQ(parser.config().cache.sizeBytes, Addr{256} << 10);
}

TEST(ConfigParserTest, L0EntriesKey)
{
    ConfigParser parser;
    parser.set("cpu.l0_entries", "1024");
    EXPECT_EQ(parser.config().cpu.l0Entries, 1024u);
    parser.set("cpu.l0_entries", "0");
    EXPECT_EQ(parser.config().cpu.l0Entries, 0u);
}

TEST(ConfigParserTest, BooleanSpellings)
{
    ConfigParser parser;
    for (const char *t : {"true", "1", "yes", "on", "TRUE", "On"}) {
        parser.set("mtlb.enabled", t);
        EXPECT_TRUE(parser.config().mtlbEnabled) << t;
    }
    for (const char *f : {"false", "0", "no", "off", "False"}) {
        parser.set("mtlb.enabled", f);
        EXPECT_FALSE(parser.config().mtlbEnabled) << f;
    }
}

TEST(ConfigParserTest, UnknownKeyIsFatal)
{
    ConfigParser parser;
    EXPECT_THROW(parser.set("tlb.entriess", "64"), FatalError);
    EXPECT_THROW(parser.set("", "64"), FatalError);
}

TEST(ConfigParserTest, BadValuesAreFatal)
{
    ConfigParser parser;
    EXPECT_THROW(parser.set("tlb.entries", "many"), FatalError);
    EXPECT_THROW(parser.set("tlb.entries", "64x"), FatalError);
    EXPECT_THROW(parser.set("mtlb.enabled", "maybe"), FatalError);
}

TEST(ConfigParserTest, StreamWithCommentsAndBlanks)
{
    std::istringstream in(R"(
# the paper's sensitivity sweep point
mtlb.entries = 256     # doubled
mtlb.assoc   = 4

tlb.entries=128
)");
    ConfigParser parser;
    parser.parseStream(in);
    EXPECT_EQ(parser.config().mtlb.numEntries, 256u);
    EXPECT_EQ(parser.config().mtlb.associativity, 4u);
    EXPECT_EQ(parser.config().tlbEntries, 128u);
}

TEST(ConfigParserTest, MalformedLineIsFatal)
{
    std::istringstream in("tlb.entries 96\n");
    ConfigParser parser;
    EXPECT_THROW(parser.parseStream(in), FatalError);
}

TEST(ConfigParserTest, ParseArgsSeparatesPositionals)
{
    const char *argv[] = {"prog", "em3d", "tlb.entries=64", "0.5",
                          "stream_buffers.enabled=true"};
    ConfigParser parser;
    const auto pos =
        parser.parseArgs(5, const_cast<char **>(argv));
    ASSERT_EQ(pos.size(), 2u);
    EXPECT_EQ(pos[0], "em3d");
    EXPECT_EQ(pos[1], "0.5");
    EXPECT_EQ(parser.config().tlbEntries, 64u);
    EXPECT_TRUE(parser.config().streamBuffers.enabled);
}

TEST(ConfigParserTest, KnownKeysCoverEverySection)
{
    const auto keys = ConfigParser::knownKeys();
    EXPECT_GE(keys.size(), 20u);
    auto has = [&](const std::string &k) {
        return std::find(keys.begin(), keys.end(), k) != keys.end();
    };
    EXPECT_TRUE(has("tlb.entries"));
    EXPECT_TRUE(has("mtlb.assoc"));
    EXPECT_TRUE(has("kernel.online_promotion"));
    EXPECT_TRUE(has("stream_buffers.depth"));
    EXPECT_TRUE(has("dram.banks"));
}

TEST(ConfigParserTest, ParsedConfigBuildsAWorkingSystem)
{
    std::istringstream in(R"(
tlb.entries = 64
mtlb.entries = 64
mtlb.assoc = 1
mem.installed_mb = 64
kernel.online_promotion = true
)");
    ConfigParser parser;
    parser.parseStream(in);
    System sys(parser.config());
    sys.kernel().addressSpace().addRegion("d", 0x10000000, 1 << 20,
                                          {});
    sys.cpu().load(0x10000000);
    EXPECT_GT(sys.totalCycles(), 0u);
}

TEST(ConfigParserTest, FileRoundTrip)
{
    const auto path = (std::filesystem::temp_directory_path() /
                       "mtlbsim_cfg_test.cfg")
                          .string();
    {
        std::ofstream out(path);
        out << "mtlb.writeback_bits = true\n";
        out << "kernel.promotion_threshold = 12345\n";
    }
    ConfigParser parser;
    parser.parseFile(path);
    EXPECT_TRUE(parser.config().mtlb.writeBackAccessBits);
    EXPECT_EQ(parser.config().kernel.promotionThresholdCycles,
              12345u);
    std::remove(path.c_str());
    EXPECT_THROW(parser.parseFile("/nonexistent.cfg"), FatalError);
}
