/**
 * @file
 * Shared stats-equivalence test harness.
 *
 * The simulator's host-speed structures (the L0 translation fast
 * path, the batched access engine) all make the same claim: the
 * simulated machine is indistinguishable with them on or off. This
 * header turns that claim into a reusable check — run the same
 * driver under two SystemConfigs and require the final cycle count,
 * the gem5-style text dump, AND the full StatGroup JSON tree to be
 * byte-identical.
 *
 * Used by tests/test_l0_fastpath.cc and tests/test_batch_engine.cc;
 * bench/simspeed.cc and the lockstep fuzzer enforce the same
 * contract at scale through their own cycle/final-stats fatals.
 */

#ifndef MTLBSIM_TESTS_EQUIVALENCE_HH
#define MTLBSIM_TESTS_EQUIVALENCE_HH

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>

#include "sim/system.hh"

namespace mtlbsim::testeq
{

/** Everything observable a run produces: final simulated time plus
 *  both serializations of the statistics tree. */
struct RunOutcome
{
    Cycles cycles = 0;
    std::string statsText;  ///< System::dumpStats
    std::string statsJson;  ///< StatGroup::toJson, dumped at indent 2
};

/**
 * Build a System from @p config, hand it to @p drive, and capture
 * the outcome. dumpStats() realizes any deferred batch counts, so
 * the JSON capture that follows sees final values too.
 */
template <typename DriveFn>
RunOutcome
runConfigured(const SystemConfig &config, DriveFn &&drive)
{
    System sys(config);
    drive(sys);

    RunOutcome out;
    out.cycles = sys.cpu().now();
    std::ostringstream os;
    sys.dumpStats(os);
    out.statsText = os.str();
    out.statsJson = sys.rootStats().toJson().dumped(2);
    return out;
}

/** Assert two outcomes are byte-identical in every observable. */
inline void
expectIdentical(const RunOutcome &a, const RunOutcome &b,
                const std::string &label = "")
{
    EXPECT_EQ(a.cycles, b.cycles) << label;
    EXPECT_EQ(a.statsText, b.statsText) << label;
    EXPECT_EQ(a.statsJson, b.statsJson) << label;
}

/**
 * The harness's main entry: run the same @p drive under @p reference
 * and @p candidate and assert full equivalence. The driver must be a
 * pure function of the System it is handed (deterministic, no
 * ambient state) or the comparison is meaningless.
 */
template <typename DriveFn>
void
expectConfigsEquivalent(const SystemConfig &reference,
                        const SystemConfig &candidate, DriveFn &&drive,
                        const std::string &label = "")
{
    const RunOutcome ref = runConfigured(reference, drive);
    const RunOutcome cand = runConfigured(candidate, drive);
    expectIdentical(ref, cand, label);
}

} // namespace mtlbsim::testeq

#endif // MTLBSIM_TESTS_EQUIVALENCE_HH
