/**
 * @file
 * Tests for trace capture and replay.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "trace/trace.hh"
#include "trace/tracing_cpu.hh"

using namespace mtlbsim;

namespace
{

constexpr Addr MB = 1024 * 1024;

std::string
tempTracePath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() /
            ("mtlbsim_test_" + name + ".trace"))
        .string();
}

SystemConfig
smallConfig()
{
    SystemConfig c;
    c.installedBytes = 64 * MB;
    return c;
}

struct TraceFileFixture : ::testing::Test
{
    void
    TearDown() override
    {
        for (const auto &p : created)
            std::remove(p.c_str());
    }

    std::string
    path(const std::string &name)
    {
        auto p = tempTracePath(name);
        created.push_back(p);
        return p;
    }

    std::vector<std::string> created;
};

} // namespace

TEST_F(TraceFileFixture, RoundTripRecords)
{
    const auto p = path("roundtrip");
    {
        TraceWriter w(p, "unit");
        w.load(0x1000);
        w.store(0x2000);
        w.execute(7);
        w.executeAt(3, 0x400000);
        w.append({TraceKind::Remap, 4, 0x10000000});
        w.append({TraceKind::Sbrk, 0, 65536});
    }

    TraceReader r(p);
    EXPECT_EQ(r.workloadName(), "unit");
    TraceRecord rec;

    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec, (TraceRecord{TraceKind::Load, 0, 0x1000}));
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec, (TraceRecord{TraceKind::Store, 0, 0x2000}));
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec, (TraceRecord{TraceKind::Execute, 7, 0}));
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec, (TraceRecord{TraceKind::ExecuteAt, 3, 0x400000}));
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec, (TraceRecord{TraceKind::Remap, 4, 0x10000000}));
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec, (TraceRecord{TraceKind::Sbrk, 0, 65536}));
    EXPECT_FALSE(r.next(rec));
    EXPECT_FALSE(r.next(rec));   // stays done
}

TEST_F(TraceFileFixture, RejectsGarbageFile)
{
    const auto p = path("garbage");
    {
        std::ofstream out(p, std::ios::binary);
        out << "this is not a trace";
    }
    EXPECT_THROW(TraceReader r(p), FatalError);
}

TEST_F(TraceFileFixture, MissingFileIsFatal)
{
    EXPECT_THROW(TraceReader r("/nonexistent/foo.trace"), FatalError);
}

TEST_F(TraceFileFixture, LargeExecuteSplitsAcrossRecords)
{
    const auto p = path("split");
    SystemConfig config = smallConfig();
    System sys(config);
    {
        TraceWriter w(p, "split");
        TracingCpu tcpu(sys.cpu(), w);
        tcpu.execute(200'000);
    }
    EXPECT_EQ(sys.cpu().instructions(), 200'000u);

    TraceReader r(p);
    TraceRecord rec;
    Counter total = 0;
    while (r.next(rec)) {
        EXPECT_EQ(rec.kind, TraceKind::Execute);
        total += rec.count;
    }
    EXPECT_EQ(total, 200'000u);
}

TEST_F(TraceFileFixture, CaptureAndReplayReproduceTiming)
{
    const auto p = path("replay");

    // Capture a small synthetic run.
    Cycles captured_cycles = 0;
    {
        System sys(smallConfig());
        sys.kernel().addressSpace().addRegion("data", 0x10000000,
                                              2 * MB, {});
        TraceWriter w(p, "synthetic");
        TracingCpu tcpu(sys.cpu(), w);

        tcpu.remap(0x10000000, 1 * MB);
        Random rng(3);
        for (int i = 0; i < 20'000; ++i) {
            tcpu.execute(4);
            const Addr a = 0x10000000 + (rng.below(2 * MB) & ~Addr{7});
            if (rng.chance(1, 3))
                tcpu.store(a);
            else
                tcpu.load(a);
        }
        captured_cycles = sys.cpu().now();
    }

    // Replay on an identically configured machine: timing must be
    // bit-identical.
    System sys2(smallConfig());
    sys2.kernel().addressSpace().addRegion("data", 0x10000000, 2 * MB,
                                           {});
    TraceReader r(p);
    TraceReplayer replayer(sys2);
    const auto replayed = replayer.replay(r);
    EXPECT_GT(replayed, 20'000u);
    EXPECT_EQ(sys2.cpu().now(), captured_cycles);
}

TEST_F(TraceFileFixture, ReplayOnDifferentMachineDiffers)
{
    const auto p = path("replay2");
    {
        System sys(smallConfig());
        sys.kernel().addressSpace().addRegion("data", 0x10000000,
                                              2 * MB, {});
        TraceWriter w(p, "synthetic");
        TracingCpu tcpu(sys.cpu(), w);
        Random rng(4);
        for (int i = 0; i < 5'000; ++i) {
            tcpu.execute(2);
            tcpu.load(0x10000000 + (rng.below(2 * MB) & ~Addr{7}));
        }
    }

    // Same trace, conventional machine vs MTLB machine.
    SystemConfig conv = smallConfig();
    conv.mtlbEnabled = false;
    System a(conv), b(smallConfig());
    for (System *sys : {&a, &b}) {
        sys->kernel().addressSpace().addRegion("data", 0x10000000,
                                               2 * MB, {});
        TraceReader r(p);
        TraceReplayer replayer(*sys);
        replayer.replay(r);
    }
    EXPECT_NE(a.cpu().now(), b.cpu().now());
}
