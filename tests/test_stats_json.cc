/**
 * @file
 * Tests for the JSON statistics layer: the json::Value printer and
 * parser (dump -> parse -> re-dump must be a fixed point), the
 * toJson() serializers of every stat kind with their edge cases
 * (empty Average, NaN formulas, single-bin histograms), and the
 * golden-file flatten/compare machinery.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "base/random.hh"
#include "stats/golden.hh"
#include "stats/json.hh"
#include "stats/stats.hh"

using namespace mtlbsim;
using namespace mtlbsim::stats;

// --- json::Value fundamentals -----------------------------------

TEST(Json, ScalarKinds)
{
    EXPECT_TRUE(json::Value().isNull());
    EXPECT_TRUE(json::Value(true).asBool());
    EXPECT_DOUBLE_EQ(json::Value(2.5).asNumber(), 2.5);
    EXPECT_EQ(json::Value("hi").asString(), "hi");
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    auto v = json::Value::object();
    v.set("zebra", 1);
    v.set("apple", 2);
    v.set("mango", 3);
    EXPECT_EQ(v.dumped(0), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
    // Replacing a key keeps its slot.
    v.set("apple", 9);
    EXPECT_EQ(v.dumped(0), "{\"zebra\":1,\"apple\":9,\"mango\":3}");
}

TEST(Json, FindAndAccessors)
{
    auto v = json::Value::object();
    v.set("n", 4.0);
    ASSERT_NE(v.find("n"), nullptr);
    EXPECT_DOUBLE_EQ(v.find("n")->asNumber(), 4.0);
    EXPECT_EQ(v.find("absent"), nullptr);
    EXPECT_THROW(v.asNumber(), PanicError);
    EXPECT_THROW(json::Value(1.0).asString(), PanicError);
}

TEST(Json, NumberFormattingIntegralVsFractional)
{
    EXPECT_EQ(json::formatNumber(0), "0");
    EXPECT_EQ(json::formatNumber(-17), "-17");
    EXPECT_EQ(json::formatNumber(1e15), "1000000000000000");
    EXPECT_EQ(json::Value(0.5).dumped(0), "0.5");
    // Above 2^53 integers are not exactly representable; the %.17g
    // form is used instead of a (wrong) integer spelling.
    EXPECT_EQ(json::formatNumber(1e300), "1.0000000000000001e+300");
}

TEST(Json, NonFiniteNumbersSerializeAsNull)
{
    const double nan = std::nan("");
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(json::Value(nan).dumped(0), "null");
    EXPECT_EQ(json::Value(inf).dumped(0), "null");
    EXPECT_EQ(json::Value(-inf).dumped(0), "null");
}

TEST(Json, StringEscaping)
{
    auto v = json::Value("a\"b\\c\nd\te\x01");
    const std::string dumped = v.dumped(0);
    EXPECT_EQ(dumped, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    EXPECT_EQ(json::Value::parse(dumped).asString(), v.asString());
}

TEST(Json, ParseBasics)
{
    const auto v = json::Value::parse(
        " { \"a\": [1, 2.5, -3e2], \"b\": {\"c\": null}, "
        "\"d\": true } ");
    EXPECT_DOUBLE_EQ(v.find("a")->items()[2].asNumber(), -300.0);
    EXPECT_TRUE(v.find("b")->find("c")->isNull());
    EXPECT_TRUE(v.find("d")->asBool());
}

TEST(Json, ParseErrorsAreFatal)
{
    EXPECT_THROW(json::Value::parse("{"), FatalError);
    EXPECT_THROW(json::Value::parse("[1,]"), FatalError);
    EXPECT_THROW(json::Value::parse("nul"), FatalError);
    EXPECT_THROW(json::Value::parse("{\"a\":1} tail"), FatalError);
    EXPECT_THROW(json::Value::parse("\"unterminated"), FatalError);
    EXPECT_THROW(json::Value::parse("1.2.3"), FatalError);
}

/** dump -> parse -> dump is a fixed point for a whole tree. */
TEST(Json, RoundTripIsFixedPoint)
{
    auto v = json::Value::object();
    v.set("int", 42);
    v.set("neg", -7);
    v.set("frac", 0.1);
    v.set("tiny", 1.0000000000000002);
    v.set("nan", std::nan(""));
    v.set("str", "line\nbreak");
    auto arr = json::Value::array();
    for (int i = 0; i < 5; ++i)
        arr.push(json::Value(i / 3.0));
    v.set("arr", std::move(arr));
    v.set("empty_obj", json::Value::object());
    v.set("empty_arr", json::Value::array());

    const std::string once = v.dumped();
    const auto parsed = json::Value::parse(once);
    EXPECT_EQ(parsed.dumped(), once);
    // Compact form is a fixed point too.
    EXPECT_EQ(json::Value::parse(v.dumped(0)).dumped(0), v.dumped(0));
}

/** Property: any double the simulator can produce survives a dump ->
 *  parse cycle exactly (or both end up NaN). */
TEST(Json, NumberRoundTripProperty)
{
    Random rng(0x71e57);
    for (int i = 0; i < 2000; ++i) {
        double v;
        switch (i % 4) {
          case 0:   // counter-like
            v = static_cast<double>(rng.below(1u << 30));
            break;
          case 1:   // ratio-like
            v = static_cast<double>(rng.below(1'000'000)) /
                static_cast<double>(rng.below(1'000'000) + 1);
            break;
          case 2:   // big cycle counts
            v = static_cast<double>(rng.next() >> 11);
            break;
          default:  // raw bit patterns (skip non-finite)
            std::uint64_t bits = rng.next();
            std::memcpy(&v, &bits, sizeof(v));
            if (!std::isfinite(v))
                v = 0.0;
            break;
        }
        const std::string dumped = json::Value(v).dumped(0);
        const auto parsed = json::Value::parse(dumped);
        EXPECT_DOUBLE_EQ(parsed.asNumber(), v) << "spelled " << dumped;
        EXPECT_EQ(parsed.dumped(0), dumped);
    }
}

// --- stat-kind serializers ---------------------------------------

TEST(StatsJson, ScalarToJson)
{
    StatGroup g("g");
    Scalar &s = g.addScalar("s", "");
    s = 12;
    const auto v = s.toJson();
    EXPECT_EQ(v.find("kind")->asString(), "scalar");
    EXPECT_DOUBLE_EQ(v.find("value")->asNumber(), 12.0);
}

TEST(StatsJson, EmptyAverageOmitsMinMax)
{
    StatGroup g("g");
    Average &a = g.addAverage("a", "");
    const auto v = a.toJson();
    EXPECT_DOUBLE_EQ(v.find("count")->asNumber(), 0.0);
    EXPECT_DOUBLE_EQ(v.find("mean")->asNumber(), 0.0);
    // The +/-inf tracking sentinels must not leak into output.
    EXPECT_EQ(v.find("min"), nullptr);
    EXPECT_EQ(v.find("max"), nullptr);
    EXPECT_EQ(v.dumped(0).find("inf"), std::string::npos);
}

TEST(StatsJson, EmptyAveragePrintsZeroNotInf)
{
    StatGroup g("g");
    g.addAverage("a", "");
    std::ostringstream os;
    g.print(os);
    EXPECT_EQ(os.str().find("inf"), std::string::npos);
}

TEST(StatsJson, PopulatedAverageReportsMinMax)
{
    StatGroup g("g");
    Average &a = g.addAverage("a", "");
    a.sample(3);
    a.sample(-1);
    const auto v = a.toJson();
    EXPECT_DOUBLE_EQ(v.find("min")->asNumber(), -1.0);
    EXPECT_DOUBLE_EQ(v.find("max")->asNumber(), 3.0);
    // reset() returns to the omitted form.
    a.reset();
    EXPECT_EQ(a.toJson().find("min"), nullptr);
}

TEST(StatsJson, FormulaNanGuard)
{
    StatGroup g("g");
    Scalar &num = g.addScalar("num", "");
    Scalar &den = g.addScalar("den", "");
    Formula &f = g.addFormula("ratio", "", [&] {
        return num.value() / den.value();
    });
    // 0/0 at dump time: serialized as null, not "nan".
    const std::string dumped = f.toJson().dumped(0);
    EXPECT_EQ(dumped, "{\"kind\":\"formula\",\"value\":null}");
    const auto parsed = json::Value::parse(dumped);
    EXPECT_TRUE(parsed.find("value")->isNull());
    EXPECT_EQ(parsed.dumped(0), dumped);
    num = 3;
    den = 4;
    EXPECT_DOUBLE_EQ(f.toJson().find("value")->asNumber(), 0.75);
}

TEST(StatsJson, HistogramSingleBin)
{
    StatGroup g("g");
    Histogram &h = g.addHistogram("h", "", 0.0, 10.0, 1);
    h.sample(5);
    h.sample(-1);
    h.sample(100);
    const auto v = h.toJson();
    EXPECT_DOUBLE_EQ(v.find("underflow")->asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(v.find("overflow")->asNumber(), 1.0);
    ASSERT_EQ(v.find("buckets")->items().size(), 1u);
    EXPECT_DOUBLE_EQ(v.find("buckets")->items()[0].asNumber(), 1.0);
}

TEST(StatsJson, EmptyHistogramRoundTrips)
{
    StatGroup g("g");
    Histogram &h = g.addHistogram("h", "", 0.0, 1.0, 4);
    const std::string dumped = h.toJson().dumped();
    EXPECT_EQ(json::Value::parse(dumped).dumped(), dumped);
    EXPECT_DOUBLE_EQ(json::Value::parse(dumped)
                         .find("count")->asNumber(), 0.0);
}

TEST(StatsJson, GroupTreeStructureAndOrder)
{
    StatGroup parent("system");
    StatGroup child("tlb");
    parent.addChild(&child);
    parent.addScalar("uptime", "") = 7;
    child.addScalar("misses", "") = 3;
    child.addScalar("hits", "") = 5;

    const auto v = parent.toJson();
    EXPECT_DOUBLE_EQ(
        v.find("stats")->find("uptime")->find("value")->asNumber(),
        7.0);
    const auto *tlb = v.find("groups")->find("tlb");
    ASSERT_NE(tlb, nullptr);
    // Registration order, not alphabetical.
    EXPECT_EQ(tlb->find("stats")->members()[0].first, "misses");
    EXPECT_EQ(tlb->find("stats")->members()[1].first, "hits");

    const std::string dumped = v.dumped();
    EXPECT_EQ(json::Value::parse(dumped).dumped(), dumped);
}

// --- golden flatten/compare --------------------------------------

TEST(Golden, GlobMatch)
{
    EXPECT_TRUE(globMatch("*", "anything.at.all"));
    EXPECT_TRUE(globMatch("*.mean", "stats.system.fill.mean"));
    EXPECT_FALSE(globMatch("*.mean", "stats.system.fill.count"));
    EXPECT_TRUE(globMatch("metrics.*", "metrics.total_cycles"));
    EXPECT_TRUE(globMatch("a*b*c", "a-x-b-y-c"));
    EXPECT_FALSE(globMatch("a*b*c", "a-x-b-y"));
    EXPECT_TRUE(globMatch("exact", "exact"));
    EXPECT_FALSE(globMatch("exact", "exactly"));
}

TEST(Golden, FlattenNumeric)
{
    const auto v = json::Value::parse(
        "{\"a\": 1, \"b\": {\"c\": 2.5, \"d\": \"str\"}, "
        "\"e\": [10, 20]}");
    const auto flat = flattenNumeric(v);
    EXPECT_DOUBLE_EQ(flat.at("a"), 1.0);
    EXPECT_DOUBLE_EQ(flat.at("b.c"), 2.5);
    EXPECT_DOUBLE_EQ(flat.at("e.0"), 10.0);
    EXPECT_DOUBLE_EQ(flat.at("e.1"), 20.0);
    EXPECT_EQ(flat.count("b.d"), 0u);
}

TEST(Golden, CompareIdenticalIsClean)
{
    const auto v = json::Value::parse(
        "{\"x\": 5, \"y\": {\"z\": 1.25}, \"s\": \"em3d\"}");
    EXPECT_TRUE(compareGolden(v, v).empty());
}

TEST(Golden, CompareFlagsDriftAndTolerance)
{
    const auto want = json::Value::parse("{\"x\": 100, \"y\": 50}");
    const auto got = json::Value::parse("{\"x\": 101, \"y\": 50}");

    // Exact comparison flags x.
    auto diffs = compareGolden(want, got);
    ASSERT_EQ(diffs.size(), 1u);
    EXPECT_EQ(diffs[0].path, "x");
    EXPECT_DOUBLE_EQ(diffs[0].expected, 100.0);
    EXPECT_DOUBLE_EQ(diffs[0].actual, 101.0);

    // A 2% relative tolerance absorbs it.
    ToleranceSpec loose;
    loose.fallback.rel = 0.02;
    EXPECT_TRUE(compareGolden(want, got, loose).empty());

    // A per-stat override can be tighter than the fallback.
    ToleranceSpec mixed;
    mixed.fallback.rel = 0.02;
    mixed.overrides.emplace_back("x", Tolerance{0.0, 0.0});
    ASSERT_EQ(compareGolden(want, got, mixed).size(), 1u);
}

TEST(Golden, CompareFlagsMissingAndExtraKeys)
{
    const auto want = json::Value::parse("{\"x\": 1, \"gone\": 2}");
    const auto got = json::Value::parse("{\"x\": 1, \"new\": 3}");
    const auto diffs = compareGolden(want, got);
    ASSERT_EQ(diffs.size(), 2u);
    // Missing keys always report, regardless of tolerance.
    ToleranceSpec loose;
    loose.fallback.rel = 1e9;
    EXPECT_EQ(compareGolden(want, got, loose).size(), 2u);
}

TEST(Golden, CompareNonNumericLeaves)
{
    const auto want = json::Value::parse("{\"name\": \"em3d\"}");
    const auto same = json::Value::parse("{\"name\": \"em3d\"}");
    const auto other = json::Value::parse("{\"name\": \"radix\"}");
    EXPECT_TRUE(compareGolden(want, same).empty());
    EXPECT_EQ(compareGolden(want, other).size(), 1u);
}

TEST(Golden, NullsCompareClean)
{
    // A NaN-guarded formula serializes as null on both sides.
    const auto v = json::Value::parse("{\"ratio\": null}");
    EXPECT_TRUE(compareGolden(v, v).empty());
    const auto num = json::Value::parse("{\"ratio\": 0.5}");
    EXPECT_EQ(compareGolden(v, num).size(), 1u);
}

TEST(Golden, DescribeMentionsPathAndValues)
{
    GoldenDiff d{"metrics.total_cycles", 100.0, 110.0};
    const std::string text = d.describe();
    EXPECT_NE(text.find("metrics.total_cycles"), std::string::npos);
    EXPECT_NE(text.find("100"), std::string::npos);
    EXPECT_NE(text.find("110"), std::string::npos);
}
