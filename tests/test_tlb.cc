/**
 * @file
 * Unit tests for the CPU TLB (superpages, NRU, purge) and the
 * micro-ITLB.
 */

#include <gtest/gtest.h>

#include "tlb/tlb.hh"

using namespace mtlbsim;

namespace
{
PageProtection rw{true, true};
PageProtection ro{false, true};
PageProtection kernel_only{true, false};
}

TEST(PageSizeClasses, PowersOfFour)
{
    EXPECT_EQ(pageSizeForClass(0), 4u * 1024);
    EXPECT_EQ(pageSizeForClass(1), 16u * 1024);
    EXPECT_EQ(pageSizeForClass(2), 64u * 1024);
    EXPECT_EQ(pageSizeForClass(6), 16u * 1024 * 1024);
    EXPECT_EQ(pageSizeForClass(7), 64u * 1024 * 1024);
}

TEST(PageSizeClasses, SizeClassFor)
{
    EXPECT_EQ(sizeClassFor(1), 0u);
    EXPECT_EQ(sizeClassFor(4096), 0u);
    EXPECT_EQ(sizeClassFor(4097), 1u);
    EXPECT_EQ(sizeClassFor(16 * 1024), 1u);
    EXPECT_EQ(sizeClassFor(64 * 1024 * 1024), 7u);
}

TEST(TlbEntryTest, CoversAndTranslate)
{
    TlbEntry e;
    e.vbase = 0x4000;
    e.pbase = 0x80240000;
    e.sizeClass = 1;    // 16 KB
    e.valid = true;
    EXPECT_TRUE(e.covers(0x4000));
    EXPECT_TRUE(e.covers(0x7fff));
    EXPECT_FALSE(e.covers(0x8000));
    // The paper's Figure 1 example: 0x00004080 -> 0x80240080.
    EXPECT_EQ(e.translate(0x4080), 0x80240080u);
}

struct TlbFixture : ::testing::Test
{
    TlbFixture() : group("t"), tlb(4, "tlb", group) {}
    stats::StatGroup group;
    Tlb tlb;
};

TEST_F(TlbFixture, MissOnEmpty)
{
    const auto r = tlb.lookup(0x1000, AccessType::Read,
                              AccessMode::User);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST_F(TlbFixture, InsertThenHit)
{
    tlb.insert(0x1000, 0x5000, 0, rw);
    const auto r = tlb.lookup(0x1234, AccessType::Read,
                              AccessMode::User);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.paddr, 0x5234u);
}

TEST_F(TlbFixture, SuperpageTranslation)
{
    // 16 KB superpage mapping virtual 0x4000 to shadow 0x80240000,
    // as in Figure 1.
    tlb.insert(0x4000, 0x80240000, 1, rw);
    const auto a = tlb.lookup(0x4080, AccessType::Read,
                              AccessMode::User);
    EXPECT_TRUE(a.hit);
    EXPECT_EQ(a.paddr, 0x80240080u);
    const auto b = tlb.lookup(0x5040, AccessType::Read,
                              AccessMode::User);
    EXPECT_TRUE(b.hit);
    EXPECT_EQ(b.paddr, 0x80241040u);
}

TEST_F(TlbFixture, MixedPageSizesCoexist)
{
    tlb.insert(0x1000, 0x5000, 0, rw);
    tlb.insert(0x1000000, 0x80000000, 4, rw);   // 1 MB superpage
    EXPECT_TRUE(tlb.lookup(0x1fff, AccessType::Read,
                           AccessMode::User).hit);
    EXPECT_TRUE(tlb.lookup(0x10fffff, AccessType::Read,
                           AccessMode::User).hit);
}

TEST_F(TlbFixture, WriteToReadOnlyFaults)
{
    tlb.insert(0x1000, 0x5000, 0, ro);
    const auto r = tlb.lookup(0x1000, AccessType::Write,
                              AccessMode::User);
    EXPECT_TRUE(r.hit);
    EXPECT_TRUE(r.protFault);
}

TEST_F(TlbFixture, UserAccessToKernelPageFaults)
{
    tlb.insert(0x1000, 0x5000, 0, kernel_only);
    const auto user = tlb.lookup(0x1000, AccessType::Read,
                                 AccessMode::User);
    EXPECT_TRUE(user.protFault);
    const auto kern = tlb.lookup(0x1000, AccessType::Read,
                                 AccessMode::Kernel);
    EXPECT_FALSE(kern.protFault);
}

TEST_F(TlbFixture, NruEvictsUnreferencedFirst)
{
    tlb.insert(0x1000, 0x1000, 0, rw);
    tlb.insert(0x2000, 0x2000, 0, rw);
    tlb.insert(0x3000, 0x3000, 0, rw);
    tlb.insert(0x4000, 0x4000, 0, rw);
    EXPECT_EQ(tlb.occupancy(), 4u);

    // All four are referenced (inserted referenced). One more insert
    // forces an NRU epoch reset and evicts something; afterwards a
    // freshly-referenced entry should survive the *next* eviction.
    tlb.insert(0x5000, 0x5000, 0, rw);
    EXPECT_EQ(tlb.occupancy(), 4u);

    // Touch 0x5000 so it is referenced.
    tlb.lookup(0x5000, AccessType::Read, AccessMode::User);
    tlb.insert(0x6000, 0x6000, 0, rw);
    EXPECT_TRUE(tlb.lookup(0x5000, AccessType::Read,
                           AccessMode::User).hit);
}

TEST_F(TlbFixture, PinnedEntryNeverEvicted)
{
    tlb.insert(0x1000, 0x1000, 0, rw, true);    // pinned
    for (Addr v = 0x10000; v < 0x20000; v += 0x1000)
        tlb.insert(v, v, 0, rw);
    EXPECT_TRUE(tlb.lookup(0x1000, AccessType::Read,
                           AccessMode::User).hit);
}

TEST_F(TlbFixture, AllPinnedPanicsOnInsert)
{
    stats::StatGroup g("t2");
    Tlb tiny(1, "tiny", g);
    tiny.insert(0x1000, 0x1000, 0, rw, true);
    EXPECT_THROW(tiny.insert(0x2000, 0x2000, 0, rw), PanicError);
}

TEST_F(TlbFixture, InsertReplacesOverlappingMapping)
{
    // §2.3: inserting a superpage discards overlapping base-page
    // entries for the same virtual range.
    tlb.insert(0x4000, 0x9000, 0, rw);
    tlb.insert(0x5000, 0xa000, 0, rw);
    tlb.insert(0x4000, 0x80240000, 1, rw);  // covers both
    EXPECT_EQ(tlb.occupancy(), 1u);
    const auto r = tlb.lookup(0x5000, AccessType::Read,
                              AccessMode::User);
    EXPECT_EQ(r.paddr, 0x80241000u);
}

TEST_F(TlbFixture, InsertUnderLargerMappingReplacesIt)
{
    tlb.insert(0x4000, 0x80240000, 1, rw);
    tlb.insert(0x5000, 0x9000, 0, rw);
    EXPECT_EQ(tlb.occupancy(), 1u);
    EXPECT_FALSE(tlb.lookup(0x4000, AccessType::Read,
                            AccessMode::User).hit);
}

TEST_F(TlbFixture, PurgeRangeDropsExactly)
{
    tlb.insert(0x1000, 0x1000, 0, rw);
    tlb.insert(0x2000, 0x2000, 0, rw);
    tlb.insert(0x3000, 0x3000, 0, rw);
    tlb.purgeRange(0x2000, 0x1000);
    EXPECT_TRUE(tlb.lookup(0x1000, AccessType::Read,
                           AccessMode::User).hit);
    EXPECT_FALSE(tlb.lookup(0x2000, AccessType::Read,
                            AccessMode::User).hit);
    EXPECT_TRUE(tlb.lookup(0x3000, AccessType::Read,
                           AccessMode::User).hit);
}

TEST_F(TlbFixture, PurgeRangeCatchesOverlappingSuperpage)
{
    tlb.insert(0x4000, 0x80240000, 1, rw);
    // Purging any page inside the superpage drops the whole entry.
    tlb.purgeRange(0x6000, 0x1000);
    EXPECT_FALSE(tlb.lookup(0x4000, AccessType::Read,
                            AccessMode::User).hit);
}

TEST_F(TlbFixture, PurgeAllKeepsPinned)
{
    tlb.insert(0x1000, 0x1000, 0, rw, true);
    tlb.insert(0x2000, 0x2000, 0, rw);
    tlb.purgeAll();
    EXPECT_EQ(tlb.occupancy(), 1u);
    EXPECT_TRUE(tlb.lookup(0x1000, AccessType::Read,
                           AccessMode::User).hit);
}

TEST_F(TlbFixture, ProbeDoesNotCountStats)
{
    tlb.insert(0x1000, 0x1000, 0, rw);
    const auto before = tlb.hits();
    EXPECT_TRUE(tlb.probe(0x1000).has_value());
    EXPECT_FALSE(tlb.probe(0x9000).has_value());
    EXPECT_EQ(tlb.hits(), before);
}

TEST_F(TlbFixture, RejectsMisalignedInsert)
{
    EXPECT_THROW(tlb.insert(0x5000, 0x80240000, 1, rw), FatalError);
    EXPECT_THROW(tlb.insert(0x4000, 0x80241000, 1, rw), FatalError);
}

TEST_F(TlbFixture, RejectsIllegalSizeClass)
{
    EXPECT_THROW(tlb.insert(0, 0, numPageSizeClasses, rw), FatalError);
}

TEST(TlbCapacity, OccupancyTracksInsertions)
{
    stats::StatGroup g("t");
    Tlb tlb(96, "tlb", g);
    for (Addr v = 0; v < 10; ++v)
        tlb.insert(v << 12, v << 12, 0, rw);
    EXPECT_EQ(tlb.occupancy(), 10u);
    EXPECT_EQ(tlb.capacity(), 96u);
}

TEST(MicroItlbTest, HitsAfterFill)
{
    stats::StatGroup g("t");
    MicroItlb uitlb(g);
    EXPECT_FALSE(uitlb.hit(0x1000));

    TlbEntry e;
    e.vbase = 0x1000;
    e.pbase = 0x5000;
    e.sizeClass = 0;
    e.valid = true;
    uitlb.fill(e);
    EXPECT_TRUE(uitlb.hit(0x1000));
    EXPECT_TRUE(uitlb.hit(0x1ffc));
    EXPECT_FALSE(uitlb.hit(0x2000));
}

TEST(MicroItlbTest, InvalidateForgets)
{
    stats::StatGroup g("t");
    MicroItlb uitlb(g);
    TlbEntry e;
    e.vbase = 0x1000;
    e.pbase = 0x5000;
    e.valid = true;
    uitlb.fill(e);
    uitlb.invalidate();
    EXPECT_FALSE(uitlb.hit(0x1000));
}
