/**
 * Bounded exhaustive model-checker tests: the depth-4 search over
 * the tiny machine is clean and bit-deterministic across runs, the
 * canonical state hash is stable, and a planted FaultInjector
 * corruption is found with a minimal-length counterexample.
 */

#include <gtest/gtest.h>

#include "fuzz/fuzzer.hh"
#include "fuzz/schedule.hh"
#include "model/modelcheck.hh"

using namespace mtlbsim;
using model::ModelConfig;
using model::ModelResult;

TEST(ModelCheck, Depth4ExhaustiveRunIsClean)
{
    ModelConfig cfg;
    cfg.depth = 4;
    const ModelResult r = model::runModelCheck(cfg);
    EXPECT_FALSE(r.failed)
        << "[" << r.failure.detector << "] " << r.failure.detail;
    EXPECT_FALSE(r.truncated);
    // The tiny machine's reachable graph is well into the thousands
    // of canonical states by depth 4; a collapse here means the
    // hash, the alphabet, or the dedup logic broke.
    EXPECT_GT(r.stats.statesExplored, 1000u);
    EXPECT_GT(r.stats.statesPruned, 0u);
    EXPECT_EQ(r.stats.levelSizes.size(), 5u);
}

TEST(ModelCheck, TwoCoreDepth4ExhaustiveRunIsClean)
{
    ModelConfig cfg;
    cfg.depth = 4;
    cfg.cores = 2;
    const ModelResult r = model::runModelCheck(cfg);
    EXPECT_FALSE(r.failed)
        << "[" << r.failure.detector << "] " << r.failure.detail;
    EXPECT_FALSE(r.truncated);
    // Pinned: the two-core reachable graph at depth 4. The count
    // moves only when the shootdown protocol, the per-op core
    // dispatch, or the canonical hash changes — all of which deserve
    // a deliberate re-pin.
    EXPECT_EQ(r.stats.statesExplored, 5193u);
    EXPECT_EQ(r.stats.statesPruned, 5406u);
    EXPECT_EQ(r.stats.edgesExecuted, 10598u);
}

TEST(ModelCheck, TwoCorePlantedSkipShootdownFoundMinimal)
{
    // One core to go stale, one to mutate behind its back: the
    // minimal trace is inject + load (remote core caches the page)
    // + remap with the broadcast swallowed — 3 ops.
    ModelConfig cfg;
    cfg.depth = 4;
    cfg.cores = 2;
    cfg.plantFault = fuzz::FaultKind::SkipShootdown;
    const ModelResult r = model::runModelCheck(cfg);
    ASSERT_TRUE(r.failed);
    EXPECT_EQ(r.counterexample.size(), 3u);
    EXPECT_EQ(r.failure.detector, "audit:cross-core-coherence");

    // On a single core the injection is a guarded no-op: there is
    // no remote TLB to leave stale, so the search stays clean.
    ModelConfig solo;
    solo.depth = 3;
    solo.plantFault = fuzz::FaultKind::SkipShootdown;
    const ModelResult clean = model::runModelCheck(solo);
    EXPECT_FALSE(clean.failed)
        << "[" << clean.failure.detector << "] "
        << clean.failure.detail;
}

TEST(ModelCheck, SearchIsDeterministicAcrossRuns)
{
    ModelConfig cfg;
    cfg.depth = 3;
    const ModelResult a = model::runModelCheck(cfg);
    const ModelResult b = model::runModelCheck(cfg);
    EXPECT_EQ(a.stats.statesExplored, b.stats.statesExplored);
    EXPECT_EQ(a.stats.statesPruned, b.stats.statesPruned);
    EXPECT_EQ(a.stats.edgesExecuted, b.stats.edgesExecuted);
    EXPECT_EQ(a.stats.levelSizes, b.stats.levelSizes);
    EXPECT_EQ(a.failed, b.failed);
}

TEST(ModelCheck, CanonicalHashIsReplayStable)
{
    // The same op sequence replayed on two fresh fuzzers must land
    // in the same canonical state; a different sequence must not
    // (the second trace leaves a dirty bit the first does not).
    const fuzz::FuzzParams params = model::modelParams();
    const std::vector<fuzz::FuzzOp> trace = {
        {fuzz::OpKind::Remap, fuzz::fuzzDataBase, 16 * 1024},
        {fuzz::OpKind::Load, fuzz::fuzzDataBase, 0},
    };

    fuzz::DifferentialFuzzer a(params);
    ASSERT_FALSE(a.run(trace).failed);
    fuzz::DifferentialFuzzer b(params);
    ASSERT_FALSE(b.run(trace).failed);
    EXPECT_EQ(model::canonicalHash(a), model::canonicalHash(b));

    std::vector<fuzz::FuzzOp> stored = trace;
    stored[1].kind = fuzz::OpKind::Store;
    fuzz::DifferentialFuzzer c(params);
    ASSERT_FALSE(c.run(stored).failed);
    EXPECT_NE(model::canonicalHash(a), model::canonicalHash(c));
}

TEST(ModelCheck, PlantedFaultFoundAtMinimalDepth)
{
    // double-map-frame needs one op of setup (the source page must
    // be present), so the minimal reproducer is exactly 2 ops:
    // a depth-1 search cannot find it...
    ModelConfig shallow;
    shallow.depth = 1;
    shallow.plantFault = fuzz::FaultKind::DoubleMapFrame;
    const ModelResult none = model::runModelCheck(shallow);
    EXPECT_FALSE(none.failed)
        << "[" << none.failure.detector << "] " << none.failure.detail;

    // ...and a depth-4 search must report it with a 2-op trace, not
    // any longer one — breadth-first order guarantees minimality.
    ModelConfig cfg;
    cfg.depth = 4;
    cfg.plantFault = fuzz::FaultKind::DoubleMapFrame;
    const ModelResult r = model::runModelCheck(cfg);
    ASSERT_TRUE(r.failed);
    EXPECT_EQ(r.counterexample.size(), 2u);
    EXPECT_EQ(r.counterexample.back().kind, fuzz::OpKind::Inject);
    EXPECT_EQ(r.failure.detector, "audit:frame-accounting");
}

TEST(ModelCheck, MaxStatesTruncates)
{
    ModelConfig cfg;
    cfg.depth = 6;
    cfg.maxStates = 50;
    const ModelResult r = model::runModelCheck(cfg);
    EXPECT_TRUE(r.truncated);
    EXPECT_FALSE(r.failed);
    EXPECT_EQ(r.stats.statesExplored, 50u);
}

TEST(ModelCheck, OpToStringNamesEveryAlphabetOp)
{
    ModelConfig cfg;
    cfg.plantFault = fuzz::FaultKind::StaleTlbEntry;
    for (const fuzz::FuzzOp &op : model::modelAlphabet(cfg))
        EXPECT_FALSE(model::opToString(op).empty());
}
