/**
 * @file
 * Unit tests for the hashed page table.
 */

#include <gtest/gtest.h>

#include <set>

#include "os/hpt.hh"

using namespace mtlbsim;

namespace
{
VmMapping
basePage(Addr vbase, Addr pbase)
{
    return {vbase, pbase, 0, PageProtection{}};
}
}

TEST(HptTest, LookupMissOnEmptyTouchesOneSlot)
{
    Hpt hpt(0x10000, 1024);
    const auto r = hpt.lookup(0x5000);
    EXPECT_FALSE(r.mapping.has_value());
    // The handler reads the (empty) head slot of the hashed bucket.
    EXPECT_EQ(r.probeAddrs.size(), 1u);
}

TEST(HptTest, InsertThenLookup)
{
    Hpt hpt(0x10000, 1024);
    hpt.insert(basePage(0x5000, 0x9000));
    const auto r = hpt.lookup(0x5123);
    ASSERT_TRUE(r.mapping.has_value());
    EXPECT_EQ(r.mapping->pbase, 0x9000u);
    EXPECT_EQ(r.probeAddrs.size(), 1u);
}

TEST(HptTest, ProbeAddressesAreInTable)
{
    Hpt hpt(0x10000, 1024);
    hpt.insert(basePage(0x5000, 0x9000));
    const auto r = hpt.lookup(0x5000);
    ASSERT_EQ(r.probeAddrs.size(), 1u);
    EXPECT_GE(r.probeAddrs[0], hpt.tableBase());
    EXPECT_LT(r.probeAddrs[0], hpt.tableBase() + hpt.tableBytes());
}

TEST(HptTest, MissOnPopulatedTableStillProbes)
{
    Hpt hpt(0x10000, 1024);
    hpt.insert(basePage(0x5000, 0x9000));
    const auto r = hpt.lookup(0x777000);
    EXPECT_FALSE(r.mapping.has_value());
    EXPECT_GE(r.probeAddrs.size(), 1u);
}

TEST(HptTest, SuperpageMappingFound)
{
    Hpt hpt(0x10000, 1024);
    hpt.insert({0x400000, 0x80000000, 4, PageProtection{}});  // 1 MB
    const auto r = hpt.lookup(0x4abcde);
    ASSERT_TRUE(r.mapping.has_value());
    EXPECT_EQ(r.mapping->sizeClass, 4u);
    EXPECT_EQ(r.mapping->vbase, 0x400000u);
}

TEST(HptTest, SuperpageIsReplicatedPerBasePage)
{
    // PA-RISC base-grain hashing: a 1 MB superpage occupies 256
    // entries, one per base page, each returning the full mapping.
    Hpt hpt(0x10000, 1024);
    hpt.insert({0x400000, 0x80000000, 4, PageProtection{}});
    EXPECT_EQ(hpt.size(), 256u);
    for (Addr off : {Addr{0}, Addr{0x1000}, Addr{0xff000}}) {
        const auto r = hpt.lookup(0x400000 + off);
        ASSERT_TRUE(r.mapping.has_value()) << off;
        EXPECT_EQ(r.mapping->vbase, 0x400000u);
        EXPECT_EQ(r.mapping->sizeClass, 4u);
    }
}

TEST(HptTest, LookupIsSingleHashRegardlessOfPageSizes)
{
    // The handler's cost does not grow when superpages coexist with
    // base pages: one hash, one (short) chain walk.
    Hpt hpt(0x10000, 1024);
    hpt.insert(basePage(0x5000, 0x9000));
    hpt.insert({0x400000, 0x80000000, 4, PageProtection{}});
    const auto sp = hpt.lookup(0x400123);
    ASSERT_TRUE(sp.mapping.has_value());
    EXPECT_EQ(sp.probeAddrs.size(), 1u);
    const auto bp = hpt.lookup(0x5000);
    ASSERT_TRUE(bp.mapping.has_value());
    EXPECT_EQ(bp.probeAddrs.size(), 1u);
}

TEST(HptTest, InsertBasePageReplicaAddsOneEntry)
{
    Hpt hpt(0x10000, 1024);
    const VmMapping sp{0x400000, 0x80000000, 1, PageProtection{}};
    hpt.insertBasePageReplica(sp, 0x401000);
    EXPECT_EQ(hpt.size(), 1u);
    EXPECT_TRUE(hpt.lookup(0x401000).mapping.has_value());
    EXPECT_FALSE(hpt.lookup(0x400000).mapping.has_value());
    EXPECT_THROW(hpt.insertBasePageReplica(sp, 0x404000), FatalError);
}

TEST(HptTest, CollisionChainsProbeInOrder)
{
    // A 1-bucket table forces every entry into one chain.
    Hpt hpt(0x10000, 1);
    hpt.insert(basePage(0x1000, 0x1000));
    hpt.insert(basePage(0x2000, 0x2000));
    hpt.insert(basePage(0x3000, 0x3000));
    const auto r = hpt.lookup(0x3000);
    ASSERT_TRUE(r.mapping.has_value());
    EXPECT_EQ(r.probeAddrs.size(), 3u);
    // Chain entries live at distinct addresses.
    std::set<Addr> unique(r.probeAddrs.begin(), r.probeAddrs.end());
    EXPECT_EQ(unique.size(), 3u);
}

TEST(HptTest, OverflowEntriesLiveBeyondMainTable)
{
    Hpt hpt(0x10000, 1);
    hpt.insert(basePage(0x1000, 0x1000));
    hpt.insert(basePage(0x2000, 0x2000));
    const auto r = hpt.lookup(0x2000);
    ASSERT_EQ(r.probeAddrs.size(), 2u);
    EXPECT_LT(r.probeAddrs[0], hpt.tableBase() + hpt.tableBytes());
    EXPECT_GE(r.probeAddrs[1], hpt.tableBase() + hpt.tableBytes());
}

TEST(HptTest, RemoveDropsMapping)
{
    Hpt hpt(0x10000, 1024);
    hpt.insert(basePage(0x5000, 0x9000));
    hpt.remove(0x5000, 0);
    EXPECT_FALSE(hpt.lookup(0x5000).mapping.has_value());
}

TEST(HptTest, RemoveFromChainKeepsOthers)
{
    Hpt hpt(0x10000, 1);
    hpt.insert(basePage(0x1000, 0x1000));
    hpt.insert(basePage(0x2000, 0x2000));
    hpt.insert(basePage(0x3000, 0x3000));
    hpt.remove(0x2000, 0);
    EXPECT_TRUE(hpt.lookup(0x1000).mapping.has_value());
    EXPECT_FALSE(hpt.lookup(0x2000).mapping.has_value());
    EXPECT_TRUE(hpt.lookup(0x3000).mapping.has_value());
}

TEST(HptTest, RemoveHeadPromotesNextIntoFixedSlot)
{
    Hpt hpt(0x10000, 1);
    hpt.insert(basePage(0x1000, 0x1000));
    hpt.insert(basePage(0x2000, 0x2000));
    hpt.remove(0x1000, 0);
    const auto r = hpt.lookup(0x2000);
    ASSERT_TRUE(r.mapping.has_value());
    // The survivor now occupies the in-table head slot.
    EXPECT_EQ(r.probeAddrs.size(), 1u);
    EXPECT_LT(r.probeAddrs[0], hpt.tableBase() + hpt.tableBytes());
}

TEST(HptTest, ReinsertReplacesInPlace)
{
    Hpt hpt(0x10000, 1024);
    hpt.insert(basePage(0x5000, 0x9000));
    hpt.insert(basePage(0x5000, 0xa000));
    const auto r = hpt.lookup(0x5000);
    ASSERT_TRUE(r.mapping.has_value());
    EXPECT_EQ(r.mapping->pbase, 0xa000u);
    EXPECT_EQ(r.probeAddrs.size(), 1u);     // no chain growth
}

TEST(HptTest, SuperpageRemovalDropsAllReplicas)
{
    Hpt hpt(0x10000, 1024);
    hpt.insert(basePage(0x5000, 0x9000));
    hpt.insert({0x400000, 0x80000000, 4, PageProtection{}});
    hpt.remove(0x400000, 4);
    EXPECT_EQ(hpt.size(), 1u);
    EXPECT_FALSE(hpt.lookup(0x400000).mapping.has_value());
    EXPECT_FALSE(hpt.lookup(0x4ff000).mapping.has_value());
    EXPECT_TRUE(hpt.lookup(0x5000).mapping.has_value());
}

TEST(HptTest, InsertRejectsMisalignedSuperpage)
{
    Hpt hpt(0x10000, 1024);
    EXPECT_THROW(hpt.insert({0x5000, 0x80000000, 1, PageProtection{}}),
                 FatalError);
}

TEST(HptTest, PaperGeometry)
{
    // §3.2: 16 K entries of 16 bytes = 256 KB.
    Hpt hpt(0x00200000, 16384);
    EXPECT_EQ(hpt.tableBytes(), 256u * 1024);
}

TEST(HptTest, RejectsNonPow2Buckets)
{
    EXPECT_THROW(Hpt(0x10000, 1000), FatalError);
}
