/**
 * @file
 * Unit tests for the physical address map.
 */

#include <gtest/gtest.h>

#include "mem/physmap.hh"

using namespace mtlbsim;

namespace
{
constexpr Addr MB = 1024 * 1024;

PhysMap
standardMap()
{
    // The paper's running example: DRAM at 0, shadow at 0x80000000.
    return PhysMap(256 * MB, {0x80000000, 512 * MB}, 32);
}
}

TEST(AddrRangeTest, ContainsAndEnd)
{
    AddrRange r{0x1000, 0x1000};
    EXPECT_TRUE(r.contains(0x1000));
    EXPECT_TRUE(r.contains(0x1fff));
    EXPECT_FALSE(r.contains(0x2000));
    EXPECT_FALSE(r.contains(0xfff));
    EXPECT_EQ(r.end(), 0x2000u);
}

TEST(PhysMapTest, ClassifiesRealAddresses)
{
    PhysMap map = standardMap();
    EXPECT_EQ(map.classify(0), AddrKind::Real);
    EXPECT_EQ(map.classify(256 * MB - 1), AddrKind::Real);
}

TEST(PhysMapTest, ClassifiesShadowAddresses)
{
    PhysMap map = standardMap();
    EXPECT_EQ(map.classify(0x80000000), AddrKind::Shadow);
    EXPECT_EQ(map.classify(0x80000000 + 512 * MB - 1), AddrKind::Shadow);
}

TEST(PhysMapTest, ClassifiesInvalidAddresses)
{
    PhysMap map = standardMap();
    // Between DRAM top and shadow base.
    EXPECT_EQ(map.classify(256 * MB), AddrKind::Invalid);
    // Above the shadow region.
    EXPECT_EQ(map.classify(0x80000000 + 512 * MB), AddrKind::Invalid);
}

TEST(PhysMapTest, IoHolesWinOverShadow)
{
    PhysMap map = standardMap();
    // An I/O hole inside what would otherwise be shadow space
    // (§2.1: the OS/MMC must avoid treating I/O as shadow).
    map.addIoHole({0x90000000, MB});
    EXPECT_EQ(map.classify(0x90000000), AddrKind::Io);
    EXPECT_EQ(map.classify(0x90000000 + MB), AddrKind::Shadow);
    EXPECT_EQ(map.classify(0x8fffffff), AddrKind::Shadow);
}

TEST(PhysMapTest, IoHoleOutsideShadow)
{
    PhysMap map = standardMap();
    map.addIoHole({0xf0000000, MB});
    EXPECT_EQ(map.classify(0xf0000000), AddrKind::Io);
}

TEST(PhysMapTest, ShadowPageIndex)
{
    PhysMap map = standardMap();
    EXPECT_EQ(map.shadowPageIndex(0x80000000), 0u);
    EXPECT_EQ(map.shadowPageIndex(0x80001000), 1u);
    EXPECT_EQ(map.shadowPageIndex(0x80240080), 0x240u);
}

TEST(PhysMapTest, ShadowPageIndexOutsideShadowPanics)
{
    PhysMap map = standardMap();
    EXPECT_THROW(map.shadowPageIndex(0x1000), PanicError);
}

TEST(PhysMapTest, PageCounts)
{
    PhysMap map = standardMap();
    EXPECT_EQ(map.numRealPages(), 256 * MB / 4096);
    EXPECT_EQ(map.numShadowPages(), 512 * MB / 4096);
}

TEST(PhysMapTest, RejectsNoDram)
{
    EXPECT_THROW(PhysMap(0, {0x80000000, MB}, 32), FatalError);
}

TEST(PhysMapTest, RejectsUnalignedDram)
{
    EXPECT_THROW(PhysMap(MB + 5, {}, 32), FatalError);
}

TEST(PhysMapTest, RejectsShadowOverlappingDram)
{
    EXPECT_THROW(PhysMap(256 * MB, {128 * MB, MB}, 32), FatalError);
}

TEST(PhysMapTest, RejectsShadowBeyondAddressSpace)
{
    EXPECT_THROW(PhysMap(256 * MB, {0xc0000000, 2048 * MB}, 32),
                 FatalError);
}

TEST(PhysMapTest, RejectsIoHoleInDram)
{
    PhysMap map = standardMap();
    EXPECT_THROW(map.addIoHole({0, MB}), FatalError);
}

TEST(PhysMapTest, NoShadowRegionSystem)
{
    // Conventional machine: no shadow space at all.
    PhysMap map(256 * MB, {}, 32);
    EXPECT_EQ(map.numShadowPages(), 0u);
    EXPECT_EQ(map.classify(0x80000000), AddrKind::Invalid);
}
