/**
 * @file
 * Cross-feature integration tests: the §4/§6 extensions interacting
 * with each other and with the core §2 mechanisms.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "mmc/memsys.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace mtlbsim;

namespace
{
constexpr Addr MB = 1024 * 1024;
}

TEST(Integration, RecoloredPageSwapsOutPagewise)
{
    // A recolored page is a single-page shadow mapping; the §2.5
    // paging machinery must handle it like any other superpage.
    SystemConfig config;
    config.installedBytes = 64 * MB;
    config.cache.virtuallyIndexed = false;
    System sys(config);
    sys.kernel().addressSpace().addRegion("data", 0x10000000, MB, {});

    sys.cpu().store(0x10000000);    // materialise + dirty
    sys.kernel().recolorPage(0x10000000, 7, sys.cpu().now());
    sys.cpu().store(0x10000040);    // dirty through the shadow map

    const auto r =
        sys.kernel().swapOutSuperpagePagewise(0x10000000,
                                              sys.cpu().now());
    EXPECT_EQ(r.pagesWritten, 1u);
    EXPECT_FALSE(
        sys.kernel().addressSpace().isPagePresent(0x10000000));

    // Fault it back in through the precise-exception path.
    sys.cpu().load(0x10000000);
    EXPECT_TRUE(
        sys.kernel().addressSpace().isPagePresent(0x10000000));
    // The recolor survives the round trip.
    EXPECT_EQ(sys.kernel().colorOf(0x10000000), 7u);
}

TEST(Integration, AllShadowPlusOnlinePromotion)
{
    // All-shadow single pages must merge into genuine superpages
    // when the promotion policy fires.
    SystemConfig config;
    config.installedBytes = 64 * MB;
    config.kernel.allShadowMode = true;
    config.kernel.onlinePromotion = true;
    System sys(config);
    sys.kernel().addressSpace().addRegion("data", 0x10000000, 4 * MB,
                                          {});

    for (unsigned r = 0; r < 120; ++r) {
        for (unsigned p = 0; p < 256; ++p) {
            sys.cpu().execute(2);
            sys.cpu().load(0x10000000 + Addr{p} * basePageSize);
        }
    }

    // Some multi-page superpages must exist now.
    bool any_multi = false;
    for (const auto &[vbase, sp] :
         sys.kernel().addressSpace().superpages())
        any_multi |= sp.sizeClass > 0;
    EXPECT_TRUE(any_multi);

    // And every touched page still translates to a valid frame.
    for (unsigned p = 0; p < 256; ++p) {
        const Addr va = 0x10000000 + Addr{p} * basePageSize;
        EXPECT_TRUE(sys.kernel().addressSpace().isPagePresent(va));
        sys.cpu().load(va);     // must not fault or panic
    }
}

TEST(Integration, StreamBuffersSurviveRemap)
{
    // Stream buffers hold post-translation (real) lines; a remap
    // changes the shadow mapping but not real memory, so streams
    // through remapped data still work end to end.
    SystemConfig config;
    config.installedBytes = 64 * MB;
    config.streamBuffers.enabled = true;
    System sys(config);
    sys.kernel().addressSpace().addRegion("data", 0x10000000, MB, {});
    sys.cpu().remap(0x10000000, MB);

    for (Addr off = 0; off < MB; off += 32) {
        sys.cpu().execute(2);
        sys.cpu().load(0x10000000 + off);
    }
    EXPECT_GT(sys.memsys().mmc().streamBuffers().hits(), 0u);
}

TEST(Integration, WholeWorkloadOnEverythingEnabled)
{
    // The kitchen sink: all-shadow mode, online promotion, stream
    // buffers — a real workload must run to completion with its
    // internal honesty checks (round-trip fidelity) intact.
    SystemConfig config;
    config.installedBytes = 128 * MB;
    config.kernel.allShadowMode = true;
    config.kernel.onlinePromotion = true;
    config.streamBuffers.enabled = true;
    System sys(config);
    auto w = makeWorkload("compress95", 0.05);
    EXPECT_NO_THROW({
        w->setup(sys);
        w->run(sys);
    });
    EXPECT_GT(sys.totalCycles(), 0u);
}

TEST(Integration, SwapPressureLoop)
{
    // Failure-injection style: repeatedly swap a superpage out and
    // fault random pages back, verifying bookkeeping never leaks
    // frames.
    SystemConfig config;
    config.installedBytes = 64 * MB;
    System sys(config);
    sys.kernel().addressSpace().addRegion("data", 0x10000000, MB, {});
    sys.cpu().remap(0x10000000, 256 * 1024);

    const Addr free_before = sys.kernel().frames().numFree() +
                             sys.kernel()
                                 .addressSpace()
                                 .numPresentPages();
    Random rng(12);
    for (int round = 0; round < 6; ++round) {
        // Touch a random subset (faulting swapped pages back in).
        for (int i = 0; i < 20; ++i) {
            const Addr va =
                0x10000000 + rng.below(64) * basePageSize;
            if (rng.chance(1, 2))
                sys.cpu().store(va);
            else
                sys.cpu().load(va);
        }
        sys.kernel().swapOutSuperpagePagewise(0x10000000,
                                              sys.cpu().now());
    }
    const Addr free_after = sys.kernel().frames().numFree() +
                            sys.kernel()
                                .addressSpace()
                                .numPresentPages();
    EXPECT_EQ(free_before, free_after) << "frame leak";
}

TEST(Integration, MixedSuperpageAndBasePageWorkingSet)
{
    // Half the data remapped, half base-paged: both halves must keep
    // translating correctly under TLB pressure.
    SystemConfig config;
    config.installedBytes = 64 * MB;
    config.tlbEntries = 64;
    System sys(config);
    sys.kernel().addressSpace().addRegion("data", 0x10000000, 4 * MB,
                                          {});
    sys.cpu().remap(0x10000000, 2 * MB);    // first half only

    Random rng(13);
    for (int i = 0; i < 30'000; ++i) {
        sys.cpu().execute(3);
        const Addr a = 0x10000000 + (rng.below(4 * MB) & ~Addr{7});
        if (rng.chance(1, 5))
            sys.cpu().store(a);
        else
            sys.cpu().load(a);
    }
    // Superpages cover exactly the first half.
    Addr covered = 0;
    for (const auto &[vbase, sp] :
         sys.kernel().addressSpace().superpages()) {
        EXPECT_LT(sp.vbase, 0x10000000u + 2 * MB);
        covered += sp.size();
    }
    EXPECT_EQ(covered, 2 * MB);
    EXPECT_GT(sys.totalCycles(), 0u);
}
