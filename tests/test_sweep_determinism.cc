/**
 * @file
 * Determinism tests for the sweep runner: the same job list must
 * serialize to byte-identical JSON regardless of worker count
 * (--jobs 1/4/8), across repeated runs, and the per-job seeding must
 * depend only on the job itself. These tests are the empirical check
 * on the re-entrancy audit: any global mutable state that leaks
 * between concurrently constructed Systems shows up here as a byte
 * diff.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sweep/matrix.hh"
#include "sweep/sweep.hh"

using namespace mtlbsim;
using namespace mtlbsim::sweep;

namespace
{

/** A small mixed matrix: every workload plus MTLB on/off variants,
 *  with both default (0) and derived per-job seeds. */
std::vector<SweepJob>
mixedJobs()
{
    std::vector<SweepJob> jobs;
    for (const auto &workload : allWorkloadNames()) {
        SweepJob job;
        job.id = "det/" + workload;
        job.workload = workload;
        job.scale = 0.02;
        job.config = paperConfig(64, true);
        jobs.push_back(job);
    }
    // No-MTLB variant and explicit per-job seeds on one workload.
    SweepJob base;
    base.id = "det/em3d/no-mtlb";
    base.workload = "em3d";
    base.scale = 0.02;
    base.config = paperConfig(96, false);
    jobs.push_back(base);

    SweepJob seeded = jobs[0];
    seeded.id = "det/compress95/seeded";
    seeded.seed = SweepRunner::deriveSeed(seeded.id);
    jobs.push_back(seeded);
    return jobs;
}

std::string
runSerialized(const std::vector<SweepJob> &jobs, unsigned workers)
{
    SweepOptions options;
    options.jobs = workers;
    options.captureStats = true;
    const auto results = SweepRunner(options).run(jobs);
    for (const auto &r : results)
        EXPECT_TRUE(r.ok) << r.id << ": " << r.error;
    return sweepToJson(results).dumped();
}

} // namespace

TEST(SweepDeterminism, SeedDerivationIsStableAndPerJob)
{
    EXPECT_EQ(SweepRunner::deriveSeed("a/b"),
              SweepRunner::deriveSeed("a/b"));
    EXPECT_NE(SweepRunner::deriveSeed("a/b"),
              SweepRunner::deriveSeed("a/c"));
    EXPECT_NE(SweepRunner::deriveSeed(""), 0u);
}

TEST(SweepDeterminism, ResultsIndexedByJobNotCompletionOrder)
{
    const auto jobs = mixedJobs();
    SweepOptions options;
    options.jobs = 4;
    const auto results = SweepRunner(options).run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(results[i].id, jobs[i].id);
}

TEST(SweepDeterminism, ByteIdenticalAcrossWorkerCounts)
{
    const auto jobs = mixedJobs();
    const std::string serial = runSerialized(jobs, 1);
    EXPECT_EQ(runSerialized(jobs, 4), serial);
    EXPECT_EQ(runSerialized(jobs, 8), serial);
}

TEST(SweepDeterminism, ByteIdenticalAcrossRepeatedRuns)
{
    const auto jobs = mixedJobs();
    EXPECT_EQ(runSerialized(jobs, 4), runSerialized(jobs, 4));
}

TEST(SweepDeterminism, SeedChangesTheTrace)
{
    // Sanity check that per-job seeding actually reaches the
    // workload: different seeds must produce different runs.
    SweepJob a;
    a.id = "seed/a";
    a.workload = "radix";
    a.scale = 0.02;
    a.config = paperConfig(64, true);
    a.seed = 1;
    SweepJob b = a;
    b.id = "seed/b";
    b.seed = 2;

    const auto ra = SweepRunner::runOne(a);
    const auto rb = SweepRunner::runOne(b);
    ASSERT_TRUE(ra.ok) << ra.error;
    ASSERT_TRUE(rb.ok) << rb.error;
    EXPECT_NE(ra.metrics.totalCycles, rb.metrics.totalCycles);
}

TEST(SweepDeterminism, FailedJobIsCapturedNotThrown)
{
    SweepJob bad;
    bad.id = "bad/unknown-workload";
    bad.workload = "no-such-benchmark";
    bad.scale = 0.02;
    bad.config = paperConfig(64, true);

    const auto results = SweepRunner(SweepOptions{}).run({bad});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_NE(results[0].error.find("unknown workload"),
              std::string::npos);
}
