/**
 * @file
 * Unit tests for the composed memory subsystem (bus + MMC).
 */

#include <gtest/gtest.h>

#include "mmc/memsys.hh"

using namespace mtlbsim;

namespace
{

constexpr Addr MB = 1024 * 1024;

struct MemsysFixture : ::testing::Test
{
    MemsysFixture()
        : map(256 * MB, {0x80000000, 512 * MB}, 32), group("t"),
          memsys(BusConfig{}, mmcConfig(), map, group)
    {}

    static MmcConfig
    mmcConfig()
    {
        MmcConfig c;
        c.hasMtlb = true;
        return c;
    }

    PhysMap map;
    stats::StatGroup group;
    MemorySystem memsys;
};

} // namespace

TEST_F(MemsysFixture, LineFillLatencyIsBusPlusMmcPlusReturn)
{
    const Cycles t = memsys.lineFill(0x1000, false, 0);
    // Lower bound: request (4) + return (8) + minimal MMC work.
    EXPECT_GT(t, 12u);
    EXPECT_FALSE(memsys.faulted());
}

TEST_F(MemsysFixture, WriteBackOnlyChargesBusAcceptance)
{
    const Cycles fill = memsys.lineFill(0x1000, false, 1000);
    const Cycles wb = memsys.writeBack(0x2000, 2000);
    EXPECT_LT(wb, fill);
}

TEST_F(MemsysFixture, ShadowFillTranslates)
{
    memsys.controlOp(0, [&](Mmc &m) {
        return m.setShadowMapping(0, 0x1234);
    });
    const Cycles t = memsys.lineFill(0x80000000, false, 0);
    EXPECT_GT(t, 0u);
    EXPECT_FALSE(memsys.faulted());
}

TEST_F(MemsysFixture, FaultedFlagTracksLastFill)
{
    memsys.lineFill(0x80000000, false, 0);  // unmapped shadow page
    EXPECT_TRUE(memsys.faulted());
    memsys.lineFill(0x1000, false, 100);
    EXPECT_FALSE(memsys.faulted());
}

TEST_F(MemsysFixture, ControlOpChargesBusAndMmc)
{
    const Cycles t = memsys.controlOp(0, [&](Mmc &m) {
        return m.setShadowMapping(1, 0x42);
    });
    // Uncached bus transfer is 6 CPU cycles; MMC work adds more.
    EXPECT_GT(t, 6u);
    EXPECT_TRUE(memsys.mmc().shadowTable().entry(1).valid);
}

TEST_F(MemsysFixture, ExclusiveFillMarksDirtyThroughTheStack)
{
    memsys.controlOp(0, [&](Mmc &m) {
        return m.setShadowMapping(2, 0x99);
    });
    memsys.lineFill(0x80002000, true, 0);
    ShadowPte pte{};
    memsys.controlOp(10, [&](Mmc &m) {
        pte = m.readShadowEntry(2);
        return Cycles{1};
    });
    EXPECT_TRUE(pte.modified);
}

TEST_F(MemsysFixture, MtlbHitsReduceFillLatency)
{
    memsys.controlOp(0, [&](Mmc &m) {
        return m.setShadowMapping(3, 0x77);
    });
    const Cycles first = memsys.lineFill(0x80003000, false, 1000);
    const Cycles second = memsys.lineFill(0x80003020, false, 2000);
    EXPECT_GT(first, second);   // second avoids the MTLB table fill
}
