/**
 * @file
 * Cross-component accounting invariants.
 *
 * After any run, the components' statistics must tell one consistent
 * story: every cache miss became a bus transaction, every bus
 * transaction reached the MMC, every MMC shadow access went through
 * the MTLB, and so on. These tests run assorted machine/workload
 * combinations and check the books.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/random.hh"
#include "mmc/memsys.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace mtlbsim;

namespace
{

constexpr Addr MB = 1024 * 1024;

/** Pull one scalar out of the stats dump by exact name. */
double
statValue(System &sys, const std::string &name)
{
    std::ostringstream os;
    sys.dumpStats(os);
    std::istringstream in(os.str());
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind(name, 0) == 0 &&
            line.size() > name.size() &&
            line[name.size()] == ' ') {
            std::istringstream fields(line.substr(name.size()));
            double value = 0;
            fields >> value;
            return value;
        }
    }
    ADD_FAILURE() << "no stat named " << name;
    return -1;
}

/** Drive a mixed random workload. */
void
drive(System &sys, unsigned accesses, std::uint64_t seed)
{
    sys.kernel().addressSpace().addRegion("data", 0x10000000, 8 * MB,
                                          {});
    sys.cpu().remap(0x10000000, 4 * MB);
    Random rng(seed);
    for (unsigned i = 0; i < accesses; ++i) {
        sys.cpu().execute(3);
        const Addr a = 0x10000000 + (rng.below(8 * MB) & ~Addr{7});
        if (rng.chance(1, 4))
            sys.cpu().store(a);
        else
            sys.cpu().load(a);
    }
}

struct MachineCase
{
    const char *name;
    bool mtlb;
    bool streamBuffers;
    bool allShadow;
    bool promotion;
};

class AccountingMatrix : public ::testing::TestWithParam<MachineCase>
{
  protected:
    System
    makeSystem()
    {
        const auto &p = GetParam();
        SystemConfig config;
        config.installedBytes = 64 * MB;
        config.mtlbEnabled = p.mtlb;
        config.streamBuffers.enabled = p.streamBuffers;
        config.kernel.allShadowMode = p.allShadow;
        config.kernel.onlinePromotion = p.promotion;
        return System(config);
    }
};

} // namespace

TEST_P(AccountingMatrix, CacheTrafficMatchesBusTraffic)
{
    System sys = makeSystem();
    drive(sys, 40'000, 11);

    const double fills = statValue(sys, "system.cache.misses");
    const double wbs = statValue(sys, "system.cache.write_backs");
    const double zeroed =
        statValue(sys, "system.kernel.zero_filled_pages");
    const double controls = statValue(sys, "system.mmc.control_ops");
    const double bus = statValue(sys, "system.bus.transactions");

    // Bus transactions (request phases) = one per fill + one
    // writeback per dirty victim + one uncached op per control write
    // + one block-store writeback per zeroed line (the kernel's
    // non-allocating zero path). Fill data returns occupy the bus
    // but are phases of the same transaction.
    const double zero_lines = zeroed * (basePageSize / cacheLineSize);
    EXPECT_DOUBLE_EQ(bus, fills + wbs + controls + zero_lines);
}

TEST_P(AccountingMatrix, MmcSeesEveryMemoryOperation)
{
    System sys = makeSystem();
    drive(sys, 40'000, 12);

    const double fills = statValue(sys, "system.cache.misses");
    const double wbs = statValue(sys, "system.cache.write_backs");
    const double zeroed =
        statValue(sys, "system.kernel.zero_filled_pages");
    const double ops = statValue(sys, "system.mmc.operations");
    const double zero_lines = zeroed * (basePageSize / cacheLineSize);

    EXPECT_DOUBLE_EQ(ops, fills + wbs + zero_lines);
}

TEST_P(AccountingMatrix, ShadowOpsGoThroughTheMtlb)
{
    System sys = makeSystem();
    drive(sys, 40'000, 13);
    if (!GetParam().mtlb)
        return;

    const double shadow_ops =
        statValue(sys, "system.mmc.shadow_ops");
    const double mtlb_lookups =
        statValue(sys, "system.mmc.mtlb.hits") +
        statValue(sys, "system.mmc.mtlb.misses");
    EXPECT_DOUBLE_EQ(shadow_ops, mtlb_lookups);
}

TEST_P(AccountingMatrix, TlbLookupsMatchCpuActivity)
{
    System sys = makeSystem();
    drive(sys, 40'000, 14);

    // Every data access performs exactly one successful TLB lookup
    // plus one failed lookup per miss trap (the retry after the
    // handler hits). Instruction-side checks add their share via
    // executeAt, which drive() does not use.
    const double loads = statValue(sys, "system.cpu.loads");
    const double stores = statValue(sys, "system.cpu.stores");
    const double hits = statValue(sys, "system.tlb.hits");
    const double misses = statValue(sys, "system.tlb.misses");
    EXPECT_DOUBLE_EQ(hits, loads + stores);
    EXPECT_DOUBLE_EQ(
        misses, statValue(sys, "system.kernel.tlb_misses"));
}

TEST_P(AccountingMatrix, MissAndFaultCyclesFitInsideTotal)
{
    System sys = makeSystem();
    drive(sys, 40'000, 15);
    const double total = static_cast<double>(sys.totalCycles());
    const double miss =
        statValue(sys, "system.kernel.tlb_miss_cycles");
    const double fault =
        statValue(sys, "system.kernel.vm_fault_cycles");
    const double remap = statValue(sys, "system.kernel.remap_cycles");
    EXPECT_LE(miss + fault + remap, total);
}

TEST_P(AccountingMatrix, InstructionCountMatchesRetirement)
{
    System sys = makeSystem();
    drive(sys, 10'000, 16);
    EXPECT_DOUBLE_EQ(statValue(sys, "system.cpu.instructions"),
                     static_cast<double>(sys.cpu().instructions()));
    // One cycle per instruction minimum: total >= instructions.
    EXPECT_GE(static_cast<double>(sys.totalCycles()),
              statValue(sys, "system.cpu.instructions"));
}

INSTANTIATE_TEST_SUITE_P(
    Machines, AccountingMatrix,
    ::testing::Values(
        MachineCase{"plain", false, false, false, false},
        MachineCase{"mtlb", true, false, false, false},
        MachineCase{"mtlb_sb", true, true, false, false},
        MachineCase{"all_shadow", true, false, true, false},
        MachineCase{"promo", true, false, false, true},
        MachineCase{"everything", true, true, true, true}),
    [](const auto &info) { return info.param.name; });

TEST(AccountingWorkload, RadixBooksBalance)
{
    SystemConfig config;
    config.installedBytes = 128 * MB;
    System sys(config);
    auto w = makeWorkload("radix", 0.05);
    w->setup(sys);
    w->run(sys);

    const double fills = statValue(sys, "system.cache.misses");
    const double wbs = statValue(sys, "system.cache.write_backs");
    const double zeroed =
        statValue(sys, "system.kernel.zero_filled_pages");
    const double controls = statValue(sys, "system.mmc.control_ops");
    const double bus = statValue(sys, "system.bus.transactions");
    const double zero_lines = zeroed * (basePageSize / cacheLineSize);
    EXPECT_DOUBLE_EQ(bus, fills + wbs + controls + zero_lines);
}
