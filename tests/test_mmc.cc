/**
 * @file
 * Unit tests for the MMC (shadow detection, MTLB integration,
 * control-register interface, fault signalling).
 */

#include <gtest/gtest.h>

#include "mmc/mmc.hh"

using namespace mtlbsim;

namespace
{

constexpr Addr MB = 1024 * 1024;

struct MmcFixture : ::testing::Test
{
    MmcFixture()
        : map(256 * MB, {0x80000000, 512 * MB}, 32), group("t"),
          mmc(config(), map, group)
    {}

    static MmcConfig
    config()
    {
        MmcConfig c;
        c.hasMtlb = true;
        return c;
    }

    PhysMap map;
    stats::StatGroup group;
    Mmc mmc;
};

} // namespace

TEST_F(MmcFixture, RealAddressGoesStraightToDram)
{
    const auto r = mmc.service(MmcOp::SharedFill, 0x1000);
    EXPECT_FALSE(r.fault);
    EXPECT_EQ(r.realAddr, 0x1000u);
    EXPECT_GT(r.mmcCycles, 0u);
}

TEST_F(MmcFixture, ShadowAddressIsRetranslated)
{
    // Figure 1's worked example: shadow 0x80241040 backed by real
    // frame 0x04012 -> real 0x04012040.
    const Addr spi = map.shadowPageIndex(0x80241000);
    mmc.setShadowMapping(spi, 0x04012);
    const auto r = mmc.service(MmcOp::SharedFill, 0x80241040);
    EXPECT_FALSE(r.fault);
    EXPECT_EQ(r.realAddr, 0x04012040u);
}

TEST_F(MmcFixture, MtlbPresenceAddsShadowCheckCycleToRealOps)
{
    // §2.2: the real-vs-shadow check adds one MMC cycle to *every*
    // operation, including purely real ones.
    MmcConfig no_mtlb = config();
    no_mtlb.hasMtlb = false;
    PhysMap plain_map(256 * MB, {}, 32);
    stats::StatGroup g2("t2");
    Mmc plain(no_mtlb, plain_map, g2);

    const auto with = mmc.service(MmcOp::SharedFill, 0x1000);
    const auto without = plain.service(MmcOp::SharedFill, 0x1000);
    EXPECT_EQ(with.mmcCycles, without.mmcCycles + 1);
}

TEST_F(MmcFixture, MtlbMissCostsExtraTableRead)
{
    const Addr spi = map.shadowPageIndex(0x80000000);
    mmc.setShadowMapping(spi, 0x100);
    const auto miss = mmc.service(MmcOp::SharedFill, 0x80000000);
    const auto hit = mmc.service(MmcOp::SharedFill, 0x80000000);
    EXPECT_GT(miss.mmcCycles, hit.mmcCycles);
}

TEST_F(MmcFixture, InvalidShadowMappingRaisesFault)
{
    const auto r = mmc.service(MmcOp::SharedFill, 0x80000000);
    EXPECT_TRUE(r.fault);
}

TEST_F(MmcFixture, FaultAfterSwapOut)
{
    const Addr spi = map.shadowPageIndex(0x80400000);
    mmc.setShadowMapping(spi, 0x200);
    EXPECT_FALSE(mmc.service(MmcOp::SharedFill, 0x80400000).fault);
    mmc.invalidateShadowMapping(spi);
    EXPECT_TRUE(mmc.service(MmcOp::SharedFill, 0x80400000).fault);
}

TEST_F(MmcFixture, RemapAfterSwapInRestoresService)
{
    const Addr spi = map.shadowPageIndex(0x80400000);
    mmc.setShadowMapping(spi, 0x200);
    mmc.invalidateShadowMapping(spi);
    mmc.setShadowMapping(spi, 0x300);   // page back in, new frame
    const auto r = mmc.service(MmcOp::SharedFill, 0x80400000);
    EXPECT_FALSE(r.fault);
    EXPECT_EQ(r.realAddr, Addr{0x300} << basePageShift);
}

TEST_F(MmcFixture, WriteBackToShadowSetsDirtyBit)
{
    // §2.5: the MTLB notes write-backs and exclusive fills.
    const Addr spi = map.shadowPageIndex(0x80800000);
    mmc.setShadowMapping(spi, 0x400);
    mmc.service(MmcOp::WriteBack, 0x80800000);
    EXPECT_TRUE(mmc.readShadowEntry(spi).modified);
}

TEST_F(MmcFixture, SharedFillDoesNotSetDirty)
{
    const Addr spi = map.shadowPageIndex(0x80800000);
    mmc.setShadowMapping(spi, 0x400);
    mmc.service(MmcOp::SharedFill, 0x80800000);
    const ShadowPte pte = mmc.readShadowEntry(spi);
    EXPECT_TRUE(pte.referenced);
    EXPECT_FALSE(pte.modified);
}

TEST_F(MmcFixture, ReadShadowEntrySyncsMtlbBits)
{
    const Addr spi = map.shadowPageIndex(0x80800000);
    mmc.setShadowMapping(spi, 0x400);
    mmc.service(MmcOp::ExclusiveFill, 0x80800000);
    // Without sync the table copy would still be clean (§3.4); the
    // control read must return the MTLB's accumulated state.
    EXPECT_TRUE(mmc.readShadowEntry(spi).modified);
}

TEST_F(MmcFixture, IoAddressesBypassDramAndMtlb)
{
    map.addIoHole({0xf0000000, MB});
    const auto r = mmc.service(MmcOp::UncachedRead, 0xf0000000);
    EXPECT_FALSE(r.fault);
    EXPECT_EQ(r.realAddr, 0xf0000000u);
}

TEST_F(MmcFixture, InvalidAddressPanics)
{
    EXPECT_THROW(mmc.service(MmcOp::SharedFill, 0x30000000),
                 PanicError);
}

TEST_F(MmcFixture, ShadowWithoutMtlbPanics)
{
    MmcConfig c = config();
    c.hasMtlb = false;
    stats::StatGroup g2("t2");
    Mmc plain(c, map, g2);
    EXPECT_THROW(plain.service(MmcOp::SharedFill, 0x80000000),
                 PanicError);
}

TEST_F(MmcFixture, MtlbRequiresShadowRegion)
{
    PhysMap plain_map(256 * MB, {}, 32);
    stats::StatGroup g2("t2");
    EXPECT_THROW(Mmc(config(), plain_map, g2), FatalError);
}

TEST_F(MmcFixture, ControlOpsReturnNonzeroCost)
{
    EXPECT_GT(mmc.setShadowMapping(0, 0x100), 0u);
    EXPECT_GT(mmc.invalidateShadowMapping(0), 0u);
    EXPECT_GT(mmc.clearShadowMapping(0), 0u);
}

TEST_F(MmcFixture, ClearRemovesEverything)
{
    const Addr spi = 7;
    mmc.setShadowMapping(spi, 0x100);
    mmc.service(MmcOp::ExclusiveFill, 0x80000000 + (spi << 12));
    mmc.clearShadowMapping(spi);
    const ShadowPte pte = mmc.shadowTable().entry(spi);
    EXPECT_FALSE(pte.valid);
    EXPECT_FALSE(pte.modified);
}
