/**
 * @file
 * Tests for the translation-invariant auditor (src/check).
 *
 * Strategy: build a real machine, put it into a known-good state,
 * verify the auditor reports it clean — then use the FaultInjector to
 * plant one corruption of each class and assert the auditor pins it
 * to the right invariant. Built with MTLBSIM_CHECK_TESTING so the
 * injector's mutators are compiled in.
 */

#include <gtest/gtest.h>

#include "check/fault_injector.hh"
#include "check/translation_auditor.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace mtlbsim;

namespace
{

constexpr Addr MB = 1024 * 1024;
constexpr Addr dataBase = 0x10000000;

SystemConfig
machine(bool mtlb = true)
{
    SystemConfig c;
    c.installedBytes = 64 * MB;
    c.mtlbEnabled = mtlb;
    return c;
}

/** Declare a data region, materialise a superpage plus some loose
 *  base pages, and stir the TLB a little. */
void
warmUp(System &sys)
{
    sys.kernel().addressSpace().addRegion("data", dataBase, 8 * MB, {});
    if (sys.config().mtlbEnabled)
        sys.cpu().remap(dataBase, MB);
    for (Addr off = 0; off < 2 * MB; off += basePageSize)
        sys.cpu().load(dataBase + off);
    // Keep the superpage (the first MB) load-only so its R/D state
    // stays clean for the desync tests; dirty the second MB.
    for (Addr off = MB; off < 2 * MB; off += basePageSize)
        sys.cpu().store(dataBase + off);
}

/**
 * Shadow-table index of the first superpage's first base page, made
 * resident in the MTLB: the warm-up sweep may have evicted it, so
 * force a fresh MMC access to its line.
 */
Addr
residentSuperpageSpi(System &sys)
{
    const auto &sps = sys.kernel().addressSpace().superpages();
    EXPECT_FALSE(sps.empty());
    const ShadowSuperpage &sp = sps.begin()->second;
    sys.cache().invalidateLine(sp.vbase, sp.shadowBase);
    sys.cpu().load(sp.vbase);
    return sys.physmap().shadowPageIndex(sp.shadowBase);
}

} // namespace

TEST(CheckerTest, CleanSystemPasses)
{
    System sys(machine());
    warmUp(sys);
    AuditReport report = sys.auditor().collect();
    for (const auto &v : report.violations)
        ADD_FAILURE() << "[" << v.invariant << "] " << v.detail;
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(report.checksRun, 9u);
}

TEST(CheckerTest, CleanNoMtlbSystemPasses)
{
    System sys(machine(false));
    warmUp(sys);
    AuditReport report = sys.auditor().collect();
    for (const auto &v : report.violations)
        ADD_FAILURE() << "[" << v.invariant << "] " << v.detail;
    EXPECT_TRUE(report.clean());
}

TEST(CheckerTest, DetectsDoubleMappedFrame)
{
    System sys(machine());
    warmUp(sys);
    // Back an untouched page with a frame that already backs another.
    FaultInjector(sys).doubleMapFrame(dataBase + MB + basePageSize,
                                      dataBase + 7 * MB);
    AuditReport report = sys.auditor().collect();
    EXPECT_TRUE(report.has("frame-accounting"));
}

TEST(CheckerTest, DetectsLeakedFrame)
{
    System sys(machine());
    warmUp(sys);
    FaultInjector(sys).leakFrame();
    AuditReport report = sys.auditor().collect();
    EXPECT_TRUE(report.has("frame-accounting"));
}

TEST(CheckerTest, DetectsStaleMtlbEntry)
{
    System sys(machine());
    warmUp(sys);
    // Redirect the superpage's first PTE under the MTLB's cached
    // copy: the retranslation the hardware holds is now stale.
    FaultInjector(sys).staleMtlbEntry(residentSuperpageSpi(sys), 3000);
    AuditReport report = sys.auditor().collect();
    EXPECT_TRUE(report.has("mtlb-coherence"));
}

TEST(CheckerTest, DetectsRdBitDesync)
{
    System sys(machine());
    warmUp(sys);
    // The table claims a modified bit the MTLB's copy never saw:
    // R/D state may only run ahead in the cache, never in the table.
    FaultInjector(sys).desyncDirtyBit(residentSuperpageSpi(sys));
    AuditReport report = sys.auditor().collect();
    EXPECT_TRUE(report.has("mtlb-coherence"));
}

TEST(CheckerTest, DetectsLeakedShadowMapping)
{
    System sys(machine());
    warmUp(sys);
    // A valid PTE at a shadow index no recorded superpage covers.
    const Addr last_spi =
        sys.physmap().shadowRange().size / basePageSize - 1;
    FaultInjector(sys).leakShadowMapping(last_spi, 3000);
    AuditReport report = sys.auditor().collect();
    EXPECT_TRUE(report.has("shadow-table"));
}

TEST(CheckerTest, DetectsStaleTlbEntry)
{
    System sys(machine());
    warmUp(sys);
    // A TLB entry for a page the OS never materialised.
    FaultInjector(sys).staleTlbEntry(dataBase + 6 * MB, 0x01000000);
    AuditReport report = sys.auditor().collect();
    EXPECT_TRUE(report.has("tlb-coherence"));
}

TEST(CheckerTest, DetectsStaleL0Entry)
{
    System sys(machine());
    warmUp(sys);
    // Refresh one L0 entry, then corrupt its memoized frame as a
    // missed epoch bump would leave it.
    sys.cpu().load(dataBase);
    FaultInjector(sys).staleL0Entry(dataBase);
    AuditReport report = sys.auditor().collect();
    EXPECT_TRUE(report.has("l0-coherence"));
}

TEST(CheckerTest, DetectsShadowEscapeToDram)
{
    System sys(machine());
    warmUp(sys);
    FaultInjector(sys).leakShadowAddressToDram();
    AuditReport report = sys.auditor().collect();
    EXPECT_TRUE(report.has("dram-guard"));
}

TEST(CheckerTest, PanicPolicyThrowsOnViolation)
{
    System sys(machine());
    warmUp(sys);
    EXPECT_NO_THROW(sys.audit());
    FaultInjector(sys).leakFrame();
    EXPECT_THROW(sys.audit(), PanicError);
}

TEST(CheckerTest, WarnPolicyCountsViolations)
{
    SystemConfig config = machine();
    config.check.panicOnViolation = false;
    System sys(config);
    warmUp(sys);
    FaultInjector(sys).leakFrame();
    EXPECT_NO_THROW(sys.audit());
    EXPECT_GE(sys.auditor().violationsFound(), 1u);
    EXPECT_EQ(sys.auditor().auditsRun(), 1u);
}

TEST(CheckerTest, EndToEndEm3dAudited)
{
    // Run a small em3d under fine-grained periodic auditing: every
    // 1000 cycles the whole translation state is walked. Any
    // violation panics, so completing the run *is* the assertion.
    // 64 MB installed; the shadow region keeps its default 512 MB
    // (the shadow allocator partitions it per size class and em3d's
    // arrays need the headroom).
    SystemConfig config = machine();
    config.check.enabled = true;
    config.check.interval = 1000;

    System sys(config);
    auto workload = makeWorkload("em3d", 0.02);
    workload->setup(sys);
    ASSERT_NO_THROW(workload->run(sys));
    sys.audit();  // cover the tail interval

    EXPECT_GT(sys.auditor().auditsRun(), 10u);
    EXPECT_EQ(sys.auditor().violationsFound(), 0u);
}
