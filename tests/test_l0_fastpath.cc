/**
 * @file
 * Tests for the L0 translation fast path (src/cpu/l0_cache.hh).
 *
 * Two obligations: (1) every kernel path that mutates translation
 * state — purge, superpage promotion, recoloring, swap-out with its
 * MTLB flush — invalidates the memoized entries via the translation
 * epoch; (2) the fast path is invisible to the simulation: a machine
 * with the L0 enabled produces byte-identical statistics to one with
 * it disabled, on real workloads and on randomized access traces.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "equivalence.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace mtlbsim;

namespace
{

constexpr Addr MB = 1024 * 1024;
constexpr Addr dataBase = 0x10000000;

SystemConfig
machine(unsigned l0_entries = 512, bool mtlb = true)
{
    SystemConfig c;
    c.installedBytes = 64 * MB;
    c.mtlbEnabled = mtlb;
    c.cpu.l0Entries = l0_entries;
    return c;
}

/** The live L0 entry covering @p va under the TLB's current epoch. */
const L0Entry *
liveEntry(System &sys, Addr va)
{
    return sys.cpu().l0().probe(va, sys.tlb().translationEpoch());
}

} // namespace

TEST(L0FastPath, MemoizesAndHitsOnRepeatedAccess)
{
    System sys(machine());
    sys.kernel().addressSpace().addRegion("data", dataBase, MB, {});

    sys.cpu().load(dataBase);           // slow path fills the L0
    const L0Entry *e = liveEntry(sys, dataBase);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->vpage, dataBase >> basePageShift);

    // The memoized frame agrees with the TLB's own translation.
    const auto tlb_entry = sys.tlb().probe(dataBase);
    ASSERT_TRUE(tlb_entry.has_value());
    EXPECT_EQ(e->pframeBase, pageBase(tlb_entry->translate(dataBase)));

    const std::uint64_t hits_before = sys.cpu().l0().hitCount();
    sys.cpu().load(dataBase + 64);      // same page: must hit the L0
    EXPECT_EQ(sys.cpu().l0().hitCount(), hits_before + 1);
}

TEST(L0FastPath, DisabledByConfig)
{
    System sys(machine(0));
    sys.kernel().addressSpace().addRegion("data", dataBase, MB, {});

    EXPECT_FALSE(sys.cpu().l0().enabled());
    sys.cpu().load(dataBase);
    sys.cpu().load(dataBase);
    EXPECT_EQ(sys.cpu().l0().hitCount(), 0u);
    EXPECT_EQ(sys.cpu().l0().missCount(), 0u);
}

TEST(L0FastPath, RejectsNonPowerOfTwoCapacity)
{
    EXPECT_THROW(L0TranslationCache(48), FatalError);
    EXPECT_NO_THROW(L0TranslationCache(0));
    EXPECT_NO_THROW(L0TranslationCache(64));
}

TEST(L0FastPath, PurgeInvalidates)
{
    System sys(machine());
    sys.kernel().addressSpace().addRegion("data", dataBase, MB, {});

    sys.cpu().load(dataBase);
    ASSERT_NE(liveEntry(sys, dataBase), nullptr);

    sys.tlb().purgeRange(dataBase, basePageSize);
    EXPECT_EQ(liveEntry(sys, dataBase), nullptr);
}

TEST(L0FastPath, PromotionInvalidates)
{
    System sys(machine());
    sys.kernel().addressSpace().addRegion("data", dataBase, 2 * MB, {});

    // Materialise base pages first so the L0 holds their base-page
    // translations, then promote the range to a shadow superpage.
    for (Addr off = 0; off < MB; off += basePageSize)
        sys.cpu().load(dataBase + off);
    ASSERT_NE(liveEntry(sys, dataBase + MB - basePageSize), nullptr);

    sys.cpu().remap(dataBase, MB);
    EXPECT_EQ(liveEntry(sys, dataBase), nullptr);
    EXPECT_EQ(liveEntry(sys, dataBase + MB - basePageSize), nullptr);
    ASSERT_FALSE(sys.kernel().addressSpace().superpages().empty());
}

TEST(L0FastPath, RecoloringInvalidates)
{
    SystemConfig config = machine();
    config.cache.virtuallyIndexed = false;  // recoloring's habitat
    System sys(config);
    sys.kernel().addressSpace().addRegion("data", dataBase, MB, {});

    sys.cpu().load(dataBase);
    ASSERT_NE(liveEntry(sys, dataBase), nullptr);

    const unsigned color = sys.kernel().colorOf(dataBase);
    sys.kernel().recolorPage(dataBase, (color + 1) % 128,
                             sys.cpu().now());
    EXPECT_EQ(liveEntry(sys, dataBase), nullptr);
}

TEST(L0FastPath, SwapOutMtlbFlushInvalidates)
{
    System sys(machine());
    sys.kernel().addressSpace().addRegion("data", dataBase, MB, {});

    sys.cpu().remap(dataBase, MB);
    sys.cpu().load(dataBase);
    ASSERT_NE(liveEntry(sys, dataBase), nullptr);

    // Swap-out reuses the frames and flushes the MTLB: the memoized
    // shadow translation would target a faulting page.
    sys.kernel().swapOutSuperpagePagewise(dataBase, sys.cpu().now());
    EXPECT_EQ(liveEntry(sys, dataBase), nullptr);
}

TEST(L0FastPath, DifferentialWorkloadStatsIdentical)
{
    // The whole simulated machine must be indistinguishable with the
    // fast path on: run the same workload on both configurations and
    // require byte-identical statistics trees (tests/equivalence.hh).
    testeq::expectConfigsEquivalent(
        machine(0), machine(512),
        [](System &sys) {
            auto workload = makeWorkload("em3d", 0.02);
            workload->setup(sys);
            workload->run(sys);
        },
        "em3d, l0 0 vs 512");
}

TEST(L0FastPath, DifferentialRandomTraceStatsIdentical)
{
    // Randomized loads/stores with interleaved promotions and
    // swap-outs, driven by a deterministic LCG: every translation-
    // mutating path fires while the L0 is hot, and the stats must
    // still match the disabled configuration byte for byte.
    auto drive = [](System &sys) {
        sys.kernel().addressSpace().addRegion("data", dataBase,
                                              8 * MB, {});
        std::uint64_t lcg = 0x2545F4914F6CDD1Dull;
        auto next = [&lcg]() {
            lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
            return lcg >> 33;
        };
        for (int i = 0; i < 20000; ++i) {
            const Addr va = dataBase + (next() % (8 * MB));
            if (next() % 3 == 0)
                sys.cpu().store(va);
            else
                sys.cpu().load(va);
            if (i == 5000)
                sys.cpu().remap(dataBase, MB);
            if (i == 10000)
                sys.kernel().swapOutSuperpagePagewise(
                    dataBase, sys.cpu().now());
            if (i == 15000)
                sys.tlb().purgeRange(dataBase + 2 * MB, MB);
        }
    };

    testeq::expectConfigsEquivalent(machine(0), machine(256), drive,
                                    "random trace, l0 0 vs 256");
}

TEST(L0FastPath, ColdPageFlushCountersStayExact)
{
    // The cache's per-page resident-line counters power flushPage's
    // cold-page early-out; the simulated cost must not depend on it.
    System sys(machine());
    sys.kernel().addressSpace().addRegion("data", dataBase, 2 * MB, {});

    sys.cpu().load(dataBase);
    const auto tlb_entry = sys.tlb().probe(dataBase);
    ASSERT_TRUE(tlb_entry.has_value());
    const Addr paddr = tlb_entry->translate(dataBase);
    EXPECT_GE(sys.cache().residentInPage(paddr), 1u);

    // Flushing a warm page and then the now-cold same page must
    // charge the identical probe-loop cost for the cold pass.
    const Cycles warm =
        sys.cache().flushPage(dataBase, paddr, sys.cpu().now());
    EXPECT_EQ(sys.cache().residentInPage(paddr), 0u);
    const Cycles cold =
        sys.cache().flushPage(dataBase, paddr, sys.cpu().now());
    const unsigned lines_per_page = basePageSize >> cacheLineShift;
    EXPECT_EQ(cold, lines_per_page * sys.cache().config().flushProbeCycles);
    EXPECT_GE(warm, cold);
}
