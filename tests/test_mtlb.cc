/**
 * @file
 * Unit tests for the memory-controller TLB — the paper's core
 * mechanism (§2.2, §2.5).
 */

#include <gtest/gtest.h>

#include "mtlb/mtlb.hh"

using namespace mtlbsim;

namespace
{

struct MtlbFixture : ::testing::Test
{
    MtlbFixture()
        : group("t"), table(1024, 0x00100000),
          mtlb(config(), table, group)
    {}

    static MtlbConfig
    config()
    {
        MtlbConfig c;
        c.numEntries = 8;
        c.associativity = 2;    // 4 sets
        return c;
    }

    stats::StatGroup group;
    ShadowTable table;
    Mtlb mtlb;
};

} // namespace

TEST_F(MtlbFixture, MissFillsFromTable)
{
    table.set(5, 0x40138);
    const auto r = mtlb.translate(5, MtlbAccess::SharedFill);
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(r.fault);
    EXPECT_EQ(r.realPfn, 0x40138u);
    EXPECT_EQ(r.tableReads, 1u);    // one hardware fill DRAM read
}

TEST_F(MtlbFixture, SecondAccessHits)
{
    table.set(5, 0x40138);
    mtlb.translate(5, MtlbAccess::SharedFill);
    const auto r = mtlb.translate(5, MtlbAccess::SharedFill);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.tableReads, 0u);
    EXPECT_EQ(mtlb.hits(), 1u);
    EXPECT_EQ(mtlb.misses(), 1u);
}

TEST_F(MtlbFixture, InvalidMappingFaults)
{
    // Entry never set: the backing page is absent (§4).
    const auto r = mtlb.translate(9, MtlbAccess::SharedFill);
    EXPECT_TRUE(r.fault);
    // The fault bit is recorded in the table so the OS can tell a
    // shadow fault from a real parity error (§4).
    EXPECT_TRUE(table.entry(9).fault);
}

TEST_F(MtlbFixture, SharedFillSetsReferencedOnly)
{
    table.set(5, 0x100);
    mtlb.translate(5, MtlbAccess::SharedFill);
    mtlb.syncAccessBits();
    EXPECT_TRUE(table.entry(5).referenced);
    EXPECT_FALSE(table.entry(5).modified);
}

TEST_F(MtlbFixture, ExclusiveFillSetsDirty)
{
    // §2.5: an exclusive cache-line fill marks the base page dirty.
    table.set(5, 0x100);
    mtlb.translate(5, MtlbAccess::ExclusiveFill);
    mtlb.syncAccessBits();
    EXPECT_TRUE(table.entry(5).referenced);
    EXPECT_TRUE(table.entry(5).modified);
}

TEST_F(MtlbFixture, WriteBackSetsDirty)
{
    table.set(5, 0x100);
    mtlb.translate(5, MtlbAccess::WriteBack);
    mtlb.syncAccessBits();
    EXPECT_TRUE(table.entry(5).modified);
}

TEST_F(MtlbFixture, DefaultConfigDefersBitWriteback)
{
    // §3.4: the simulated MTLB does not write updated R/M info back
    // to the table continuously.
    table.set(5, 0x100);
    mtlb.translate(5, MtlbAccess::ExclusiveFill);
    EXPECT_FALSE(table.entry(5).modified);  // still only in the MTLB
    mtlb.syncAccessBits();
    EXPECT_TRUE(table.entry(5).modified);
}

TEST_F(MtlbFixture, WriteThroughModeUpdatesTableImmediately)
{
    MtlbConfig c = config();
    c.writeBackAccessBits = true;
    stats::StatGroup g("t2");
    Mtlb wt(c, table, g);
    table.set(5, 0x100);
    wt.translate(5, MtlbAccess::ExclusiveFill);
    EXPECT_TRUE(table.entry(5).modified);
}

TEST_F(MtlbFixture, EvictionWritesBitsBack)
{
    // Fill one set (indices congruent mod 4) past associativity; the
    // evicted entry's accumulated bits must land in the table.
    table.set(0, 0x100);
    table.set(4, 0x104);
    table.set(8, 0x108);
    mtlb.translate(0, MtlbAccess::ExclusiveFill);
    mtlb.translate(4, MtlbAccess::SharedFill);
    mtlb.translate(8, MtlbAccess::SharedFill);  // evicts index 0
    EXPECT_TRUE(table.entry(0).modified);
}

TEST_F(MtlbFixture, EvictionWritesReferencedOnlyForCleanReads)
{
    // A shared-filled (read-only) entry evicted by set pressure
    // writes back referenced but must not invent a modified bit.
    table.set(0, 0x100);
    table.set(4, 0x104);
    table.set(8, 0x108);
    mtlb.translate(0, MtlbAccess::SharedFill);
    mtlb.translate(4, MtlbAccess::SharedFill);
    mtlb.translate(8, MtlbAccess::SharedFill);  // evicts index 0
    EXPECT_TRUE(table.entry(0).referenced);
    EXPECT_FALSE(table.entry(0).modified);
}

TEST_F(MtlbFixture, EvictionWritesBitsAccumulatedAcrossHits)
{
    // R from the fill plus M from a later write-back hit both ride
    // the eviction write-back; neither touched DRAM in between
    // (deferred mode).
    table.set(0, 0x100);
    table.set(4, 0x104);
    table.set(8, 0x108);
    mtlb.translate(0, MtlbAccess::SharedFill);
    mtlb.translate(0, MtlbAccess::WriteBack);   // hit, accrues M
    EXPECT_FALSE(table.entry(0).modified);      // still deferred
    mtlb.translate(4, MtlbAccess::SharedFill);
    mtlb.translate(8, MtlbAccess::SharedFill);  // evicts index 0
    EXPECT_TRUE(table.entry(0).referenced);
    EXPECT_TRUE(table.entry(0).modified);
}

TEST_F(MtlbFixture, EvictionWithoutFreshBitsWritesNothing)
{
    // An entry refilled from a table that already records R carries
    // no new information; its eviction must not rewrite the table.
    // (Observable: bits cleared behind the MTLB's back stay clear.)
    table.set(0, 0x100);
    mtlb.translate(0, MtlbAccess::SharedFill);
    mtlb.syncAccessBits();                      // R now in the table
    mtlb.purgeAll();
    mtlb.translate(0, MtlbAccess::SharedFill);  // refill; R already set
    table.entry(0).referenced = 0;              // ECC scrub, say
    table.set(4, 0x104);
    table.set(8, 0x108);
    mtlb.translate(4, MtlbAccess::SharedFill);
    mtlb.translate(8, MtlbAccess::SharedFill);  // evicts index 0
    EXPECT_FALSE(table.entry(0).referenced);
}

TEST_F(MtlbFixture, SetAssociativeConflicts)
{
    // Three pages mapping to the same set of a 2-way MTLB cannot all
    // be resident.
    table.set(0, 0x100);
    table.set(4, 0x104);
    table.set(8, 0x108);
    mtlb.translate(0, MtlbAccess::SharedFill);
    mtlb.translate(4, MtlbAccess::SharedFill);
    mtlb.translate(8, MtlbAccess::SharedFill);
    const auto r = mtlb.translate(0, MtlbAccess::SharedFill);
    EXPECT_FALSE(r.hit);    // 0 was the NRU victim earlier
}

TEST_F(MtlbFixture, DifferentSetsDoNotConflict)
{
    table.set(0, 0x100);
    table.set(1, 0x101);
    table.set(2, 0x102);
    table.set(3, 0x103);
    for (Addr i = 0; i < 4; ++i)
        mtlb.translate(i, MtlbAccess::SharedFill);
    for (Addr i = 0; i < 4; ++i)
        EXPECT_TRUE(mtlb.translate(i, MtlbAccess::SharedFill).hit);
}

TEST_F(MtlbFixture, PurgeInvalidatesAndSyncsBits)
{
    table.set(5, 0x100);
    mtlb.translate(5, MtlbAccess::ExclusiveFill);
    mtlb.purge(5);
    EXPECT_TRUE(table.entry(5).modified);
    const auto r = mtlb.translate(5, MtlbAccess::SharedFill);
    EXPECT_FALSE(r.hit);    // must re-fill after purge
}

TEST_F(MtlbFixture, PurgeAllEmptiesEveryEntry)
{
    table.set(0, 0x100);
    table.set(1, 0x101);
    mtlb.translate(0, MtlbAccess::SharedFill);
    mtlb.translate(1, MtlbAccess::SharedFill);
    mtlb.purgeAll();
    EXPECT_FALSE(mtlb.translate(0, MtlbAccess::SharedFill).hit);
    EXPECT_FALSE(mtlb.translate(1, MtlbAccess::SharedFill).hit);
}

TEST_F(MtlbFixture, StaleEntryGoneAfterPurgeAndRemap)
{
    table.set(5, 0x100);
    mtlb.translate(5, MtlbAccess::SharedFill);
    // OS swaps the backing frame: table updated, MTLB purged.
    table.set(5, 0x200);
    mtlb.purge(5);
    const auto r = mtlb.translate(5, MtlbAccess::SharedFill);
    EXPECT_EQ(r.realPfn, 0x200u);
}

TEST_F(MtlbFixture, FaultAfterInvalidation)
{
    // §2.5/§4: after the OS swaps a base page out, accesses to it
    // fault even though the CPU TLB superpage entry is untouched.
    table.set(5, 0x100);
    mtlb.translate(5, MtlbAccess::SharedFill);
    mtlb.purge(5);
    table.invalidate(5);
    const auto r = mtlb.translate(5, MtlbAccess::SharedFill);
    EXPECT_TRUE(r.fault);
}

TEST_F(MtlbFixture, HitRateComputation)
{
    table.set(0, 0x100);
    mtlb.translate(0, MtlbAccess::SharedFill);  // miss
    mtlb.translate(0, MtlbAccess::SharedFill);  // hit
    mtlb.translate(0, MtlbAccess::SharedFill);  // hit
    EXPECT_NEAR(mtlb.hitRate(), 2.0 / 3.0, 1e-9);
}

TEST(MtlbConfigTest, RejectsBadGeometry)
{
    stats::StatGroup g("t");
    ShadowTable table(64, 0);
    MtlbConfig c;
    c.numEntries = 0;
    EXPECT_THROW(Mtlb(c, table, g), FatalError);
    c.numEntries = 128;
    c.associativity = 0;
    EXPECT_THROW(Mtlb(c, table, g), FatalError);
    c.associativity = 3;    // 128/3 does not divide evenly
    EXPECT_THROW(Mtlb(c, table, g), FatalError);
    c.numEntries = 96;      // 96/3 = 32 sets: fine and power of 2
    EXPECT_NO_THROW(Mtlb(c, table, g));
    c.numEntries = 72;      // 24 sets: not a power of 2
    EXPECT_THROW(Mtlb(c, table, g), FatalError);
}

TEST(MtlbFullyAssociative, SingleSetWorks)
{
    stats::StatGroup g("t");
    ShadowTable table(64, 0);
    MtlbConfig c;
    c.numEntries = 4;
    c.associativity = 4;    // fully associative
    Mtlb mtlb(c, table, g);
    EXPECT_EQ(mtlb.numSets(), 1u);
    for (Addr i = 0; i < 4; ++i)
        table.set(i, 0x100 + i);
    for (Addr i = 0; i < 4; ++i)
        mtlb.translate(i, MtlbAccess::SharedFill);
    for (Addr i = 0; i < 4; ++i)
        EXPECT_TRUE(mtlb.translate(i, MtlbAccess::SharedFill).hit);
}

TEST(MtlbPaperConfig, DefaultIs128Entry2Way)
{
    // §3.4's default MTLB configuration.
    MtlbConfig c;
    EXPECT_EQ(c.numEntries, 128u);
    EXPECT_EQ(c.associativity, 2u);
    EXPECT_FALSE(c.writeBackAccessBits);
}
