/**
 * @file
 * Unit tests for the direct-mapped VIPT cache model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/cache.hh"

using namespace mtlbsim;

namespace
{

/** Backend that returns fixed latencies and records the traffic. */
class FakeBackend : public MemBackend
{
  public:
    Cycles fillLatency = 20;
    Cycles wbLatency = 6;
    std::vector<Addr> fills;
    std::vector<bool> fillExclusive;
    std::vector<Addr> writeBacks;

    Cycles
    lineFill(Addr paddr, bool exclusive, Cycles) override
    {
        fills.push_back(paddr);
        fillExclusive.push_back(exclusive);
        return fillLatency;
    }

    Cycles
    writeBack(Addr paddr, Cycles) override
    {
        writeBacks.push_back(paddr);
        return wbLatency;
    }
};

struct CacheFixture : ::testing::Test
{
    CacheFixture() : group("t"), cache(config(), backend, group) {}

    static CacheConfig
    config()
    {
        CacheConfig c;
        c.sizeBytes = 64 * 1024;    // small for aliasing tests
        return c;
    }

    stats::StatGroup group;
    FakeBackend backend;
    Cache cache;
};

} // namespace

TEST_F(CacheFixture, ColdMissFillsLine)
{
    const auto r = cache.access(0x1000, 0x5000, false, 0);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.latency, 1u + 20u);
    ASSERT_EQ(backend.fills.size(), 1u);
    EXPECT_EQ(backend.fills[0], 0x5000u);
    EXPECT_FALSE(backend.fillExclusive[0]);
}

TEST_F(CacheFixture, HitAfterFill)
{
    cache.access(0x1000, 0x5000, false, 0);
    const auto r = cache.access(0x1004, 0x5004, false, 30);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.latency, 1u);
}

TEST_F(CacheFixture, StoreMissIsExclusiveFill)
{
    cache.access(0x1000, 0x5000, true, 0);
    ASSERT_EQ(backend.fillExclusive.size(), 1u);
    EXPECT_TRUE(backend.fillExclusive[0]);
}

TEST_F(CacheFixture, DirtyVictimIsWrittenBack)
{
    cache.access(0x1000, 0x5000, true, 0);     // dirty line
    // Same index (64 KB apart in virtual space), different tag.
    cache.access(0x1000 + 64 * 1024, 0x9000, false, 100);
    ASSERT_EQ(backend.writeBacks.size(), 1u);
    EXPECT_EQ(backend.writeBacks[0], 0x5000u);
}

TEST_F(CacheFixture, CleanVictimIsNotWrittenBack)
{
    cache.access(0x1000, 0x5000, false, 0);
    cache.access(0x1000 + 64 * 1024, 0x9000, false, 100);
    EXPECT_TRUE(backend.writeBacks.empty());
}

TEST_F(CacheFixture, WriteHitSetsDirty)
{
    cache.access(0x1000, 0x5000, false, 0);    // clean fill
    cache.access(0x1000, 0x5000, true, 10);    // dirty it
    cache.access(0x1000 + 64 * 1024, 0x9000, false, 100);
    EXPECT_EQ(backend.writeBacks.size(), 1u);
}

TEST_F(CacheFixture, VirtualIndexPhysicalTag)
{
    // Two different virtual addresses with the same physical line:
    // VIPT means they can occupy two distinct cache slots.
    cache.access(0x1000, 0x5000, false, 0);
    const auto r = cache.access(0x2000, 0x5000, false, 10);
    EXPECT_FALSE(r.hit);    // different index, so a separate fill
    EXPECT_EQ(backend.fills.size(), 2u);
}

TEST_F(CacheFixture, ShadowAddressesAreOrdinaryTags)
{
    // Shadow physical addresses flow through the cache unchanged
    // (§1: they appear as physical tags on cache lines).
    const Addr shadow = 0x80240080;
    cache.access(0x4080, shadow, false, 0);
    EXPECT_TRUE(cache.probe(0x4080, shadow));
    const auto r = cache.access(0x4080, shadow, false, 10);
    EXPECT_TRUE(r.hit);
}

TEST_F(CacheFixture, FlushPageWritesBackDirtyLines)
{
    // Dirty three lines of the page at vaddr 0x3000 / paddr 0x7000.
    cache.access(0x3000, 0x7000, true, 0);
    cache.access(0x3020, 0x7020, true, 50);
    cache.access(0x3800, 0x7800, true, 100);
    backend.writeBacks.clear();

    cache.flushPage(0x3000, 0x7000, 200);
    EXPECT_EQ(backend.writeBacks.size(), 3u);
    EXPECT_FALSE(cache.probe(0x3000, 0x7000));
    EXPECT_FALSE(cache.probe(0x3020, 0x7020));
    EXPECT_FALSE(cache.probe(0x3800, 0x7800));
}

TEST_F(CacheFixture, FlushPageCostIncludesProbes)
{
    // An empty page flush still probes all 128 line slots.
    const Cycles cost = cache.flushPage(0x3000, 0x7000, 0);
    const unsigned lines_per_page = basePageSize / cacheLineSize;
    EXPECT_EQ(cost, lines_per_page * config().flushProbeCycles);
}

TEST_F(CacheFixture, FlushPageCostNearPaperValue)
{
    // §3.3: flushing a 4 KB page averages ~1,400 CPU cycles. With
    // the default 10-cycle probe the pure loop is 1,280 cycles;
    // write-backs add the rest.
    const Cycles cost = cache.flushPage(0x3000, 0x7000, 0);
    EXPECT_GE(cost, 1000u);
    EXPECT_LE(cost, 2000u);
}

TEST_F(CacheFixture, FlushPageLeavesOtherPagesAlone)
{
    cache.access(0x3000, 0x7000, true, 0);
    cache.access(0x5000, 0x9000, true, 10);    // different page
    cache.flushPage(0x3000, 0x7000, 100);
    EXPECT_TRUE(cache.probe(0x5000, 0x9000));
}

TEST_F(CacheFixture, FlushPageIgnoresAliasedTags)
{
    // A line at the right index but belonging to another physical
    // page must survive the flush.
    cache.access(0x3000, 0xb000, true, 0);
    cache.flushPage(0x3000, 0x7000, 100);
    EXPECT_TRUE(cache.probe(0x3000, 0xb000));
    EXPECT_TRUE(backend.writeBacks.empty());
}

TEST_F(CacheFixture, InvalidateLineDropsWithoutWriteback)
{
    cache.access(0x1000, 0x5000, true, 0);
    cache.invalidateLine(0x1000, 0x5000);
    EXPECT_FALSE(cache.probe(0x1000, 0x5000));
    EXPECT_TRUE(backend.writeBacks.empty());
}

TEST_F(CacheFixture, InvalidateAllEmptiesCache)
{
    cache.access(0x1000, 0x5000, true, 0);
    cache.access(0x2000, 0x6000, false, 10);
    cache.invalidateAll();
    EXPECT_FALSE(cache.probe(0x1000, 0x5000));
    EXPECT_FALSE(cache.probe(0x2000, 0x6000));
}

TEST_F(CacheFixture, FillLatencyStatTracksBackend)
{
    backend.fillLatency = 42;
    cache.access(0x1000, 0x5000, false, 0);
    EXPECT_DOUBLE_EQ(cache.avgFillLatency(), 42.0);
}

TEST_F(CacheFixture, HitAndMissCounters)
{
    cache.access(0x1000, 0x5000, false, 0);
    cache.access(0x1000, 0x5000, false, 10);
    cache.access(0x9000, 0x9000, false, 20);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST_F(CacheFixture, ProbeDirtyDistinguishesCleanLines)
{
    cache.access(0x1000, 0x5000, false, 0);
    EXPECT_FALSE(cache.probeDirty(0x1000, 0x5000));
    cache.access(0x1000, 0x5000, true, 10);
    EXPECT_TRUE(cache.probeDirty(0x1000, 0x5000));
}

TEST(CacheConfigTest, RejectsNonPowerOf2Size)
{
    stats::StatGroup g("t");
    FakeBackend backend;
    CacheConfig c;
    c.sizeBytes = 100000;
    EXPECT_THROW(Cache(c, backend, g), FatalError);
}

TEST(CacheGeometry, PaperConfigHas16KLines)
{
    stats::StatGroup g("t");
    FakeBackend backend;
    Cache cache(CacheConfig{}, backend, g);   // 512 KB default
    EXPECT_EQ(cache.numLines(), 512u * 1024 / 32);
}

/* ------------------------------------------------------------------ */
/* Physically indexed mode (the recoloring configuration, §6)          */
/* ------------------------------------------------------------------ */

namespace
{

struct PhysIndexedFixture : ::testing::Test
{
    PhysIndexedFixture() : group("t"), cache(config(), backend, group)
    {}

    static CacheConfig
    config()
    {
        CacheConfig c;
        c.sizeBytes = 64 * 1024;
        c.virtuallyIndexed = false;
        return c;
    }

    stats::StatGroup group;
    FakeBackend backend;
    Cache cache;
};

} // namespace

TEST_F(PhysIndexedFixture, IndexComesFromPhysicalAddress)
{
    // Same physical line via two different virtual addresses: in
    // physically indexed mode they share one slot, so the second
    // access hits.
    cache.access(0x1000, 0x5000, false, 0);
    const auto r = cache.access(0x2000, 0x5000, false, 10);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(backend.fills.size(), 1u);
}

TEST_F(PhysIndexedFixture, PhysicalConflictsThrash)
{
    // Two physical lines 64 KB apart collide regardless of their
    // virtual placement.
    cache.access(0x1000, 0x05000, false, 0);
    cache.access(0x9000, 0x15000, false, 10);   // same phys index
    const auto r = cache.access(0x1000, 0x05000, false, 20);
    EXPECT_FALSE(r.hit);
}

TEST_F(PhysIndexedFixture, DifferentPhysicalColorsCoexist)
{
    cache.access(0x1000, 0x05000, false, 0);
    cache.access(0x9000, 0x06000, false, 10);   // different index
    EXPECT_TRUE(cache.access(0x1000, 0x05000, false, 20).hit);
    EXPECT_TRUE(cache.access(0x9000, 0x06000, false, 30).hit);
}

TEST_F(PhysIndexedFixture, FlushPageProbesPhysicalIndices)
{
    cache.access(0x1000, 0x5000, true, 0);
    cache.access(0x1020, 0x5020, true, 10);
    backend.writeBacks.clear();
    // Flush by (vaddr, paddr): in physical mode the probe loop must
    // find the lines through their physical indices.
    cache.flushPage(0x1000, 0x5000, 100);
    EXPECT_EQ(backend.writeBacks.size(), 2u);
    EXPECT_FALSE(cache.probe(0x1000, 0x5000));
}
