/**
 * @file
 * Unit tests for the shadow-to-physical translation table.
 */

#include <gtest/gtest.h>

#include "mtlb/shadow_table.hh"

using namespace mtlbsim;

TEST(ShadowPteTest, IsFourBytes)
{
    // §2.2: 4-byte entries; 24-bit PFN maps 64 GB of real memory.
    EXPECT_EQ(sizeof(ShadowPte), 4u);
}

TEST(ShadowTableTest, EntryAddressComputation)
{
    // §2.2's fill example: index 0x240, table base 0, entry 4 bytes
    // -> the fill hardware loads from 0x900.
    ShadowTable table(0x1000, 0);
    EXPECT_EQ(table.entryAddr(0x240), 0x900u);
}

TEST(ShadowTableTest, EntryAddressWithBase)
{
    ShadowTable table(0x1000, 0x00100000);
    EXPECT_EQ(table.entryAddr(0), 0x00100000u);
    EXPECT_EQ(table.entryAddr(3), 0x0010000cu);
}

TEST(ShadowTableTest, SetInstallsValidMapping)
{
    ShadowTable table(64, 0);
    table.set(5, 0x40138);
    const ShadowPte &e = table.entry(5);
    EXPECT_TRUE(e.valid);
    EXPECT_EQ(e.realPfn, 0x40138u);
    EXPECT_FALSE(e.fault);
    EXPECT_FALSE(e.referenced);
    EXPECT_FALSE(e.modified);
}

TEST(ShadowTableTest, SetRejectsOversizedPfn)
{
    ShadowTable table(64, 0);
    EXPECT_THROW(table.set(0, Addr{1} << 24), FatalError);
}

TEST(ShadowTableTest, InvalidatePreservesAccessBits)
{
    ShadowTable table(64, 0);
    table.set(1, 0x123);
    table.entry(1).referenced = 1;
    table.entry(1).modified = 1;
    table.invalidate(1);
    EXPECT_FALSE(table.entry(1).valid);
    EXPECT_TRUE(table.entry(1).referenced);
    EXPECT_TRUE(table.entry(1).modified);
}

TEST(ShadowTableTest, ClearWipesEntry)
{
    ShadowTable table(64, 0);
    table.set(1, 0x123);
    table.entry(1).modified = 1;
    table.clear(1);
    EXPECT_FALSE(table.entry(1).valid);
    EXPECT_FALSE(table.entry(1).modified);
    EXPECT_EQ(table.entry(1).realPfn, 0u);
}

TEST(ShadowTableTest, OutOfRangePanics)
{
    ShadowTable table(64, 0);
    EXPECT_THROW(table.entry(64), PanicError);
    EXPECT_THROW(table.entryAddr(1000), PanicError);
}

TEST(ShadowTableTest, PaperSizedTableIs512KB)
{
    // §2.2: 512 MB of shadow space = 128 K entries = 512 KB.
    const Addr entries = (Addr{512} * 1024 * 1024) >> basePageShift;
    ShadowTable table(entries, 0);
    EXPECT_EQ(entries * sizeof(ShadowPte), Addr{512} * 1024);
    EXPECT_EQ(table.numEntries(), 131072u);
}

TEST(ShadowTableTest, RejectsEmptyOrMisaligned)
{
    EXPECT_THROW(ShadowTable(0, 0), FatalError);
    EXPECT_THROW(ShadowTable(64, 2), FatalError);
}
