/**
 * @file
 * Unit tests for the kernel: TLB-miss handling, demand zero,
 * remap() superpage creation, sbrk() preallocation, and
 * per-base-page swapping.
 */

#include <gtest/gtest.h>

#include <set>

#include "mmc/memsys.hh"
#include "os/kernel.hh"

using namespace mtlbsim;

namespace
{

constexpr Addr MB = 1024 * 1024;

struct KernelFixture : ::testing::Test
{
    KernelFixture(bool with_mtlb = true)
        : map(64 * MB,
              with_mtlb ? AddrRange{0x80000000, 512 * MB}
                        : AddrRange{},
              32),
          group("t"),
          memsys(BusConfig{}, mmcConfig(with_mtlb), map, group),
          cache(CacheConfig{}, memsys, group),
          tlb(96, "tlb", group), uitlb(group),
          kernel(KernelConfig{}, map, tlb, uitlb, cache, memsys,
                 group)
    {}

    static MmcConfig
    mmcConfig(bool with_mtlb)
    {
        MmcConfig c;
        c.hasMtlb = with_mtlb;
        return c;
    }

    /** Declare a simple data region. */
    void
    addData(Addr base = 0x10000000, Addr size = 16 * MB)
    {
        kernel.addressSpace().addRegion("data", base, size, {});
    }

    PhysMap map;
    stats::StatGroup group;
    MemorySystem memsys;
    Cache cache;
    Tlb tlb;
    MicroItlb uitlb;
    Kernel kernel;
};

struct KernelNoMtlbFixture : KernelFixture
{
    KernelNoMtlbFixture() : KernelFixture(false) {}
};

} // namespace

TEST_F(KernelFixture, TlbMissMaterialisesPageAndFillsTlb)
{
    addData();
    const Cycles cost = kernel.handleTlbMiss(0x10000123,
                                             AccessType::Read, 0);
    EXPECT_GT(cost, 0u);
    const auto r = tlb.lookup(0x10000123, AccessType::Read,
                              AccessMode::User);
    EXPECT_TRUE(r.hit);
    EXPECT_TRUE(kernel.addressSpace().isPagePresent(0x10000123));
}

TEST_F(KernelFixture, SecondMissOnSamePageIsCheaper)
{
    addData();
    const Cycles first = kernel.handleTlbMiss(0x10000000,
                                              AccessType::Read, 0);
    tlb.purgeAll();
    const Cycles second = kernel.handleTlbMiss(0x10000000,
                                               AccessType::Read, 1000);
    // First miss pays demand-zero; the second only probes the HPT.
    EXPECT_LT(second, first / 2);
}

TEST_F(KernelFixture, SegfaultIsFatal)
{
    addData();
    EXPECT_THROW(kernel.handleTlbMiss(0x70000000, AccessType::Read, 0),
                 FatalError);
}

TEST_F(KernelFixture, DemandZeroCountsPages)
{
    addData();
    kernel.handleTlbMiss(0x10000000, AccessType::Read, 0);
    kernel.handleTlbMiss(0x10001000, AccessType::Read, 1000);
    const auto *faults = group.find("");
    (void)faults;
    EXPECT_EQ(kernel.addressSpace().numPresentPages(), 2u);
}

TEST_F(KernelFixture, RemapCreatesMaximalSuperpages)
{
    addData();
    // 1 MB + 16 KB, 1 MB aligned: expect one 1 MB superpage, then
    // one 16 KB superpage.
    kernel.remap(0x10000000, MB + 16 * 1024, 0);
    const auto &sps = kernel.addressSpace().superpages();
    ASSERT_EQ(sps.size(), 2u);
    auto it = sps.begin();
    EXPECT_EQ(it->second.sizeClass, 4u);    // 1 MB
    ++it;
    EXPECT_EQ(it->second.sizeClass, 1u);    // 16 KB
}

TEST_F(KernelFixture, RemapSkipsUnalignedHead)
{
    addData();
    // Start 4 KB into a 16 KB grain: the sub-16 KB head stays
    // base-paged (§2.4).
    kernel.remap(0x10001000, 64 * 1024, 0);
    const auto &sps = kernel.addressSpace().superpages();
    ASSERT_GE(sps.size(), 1u);
    EXPECT_EQ(sps.begin()->first, 0x10004000u);
    EXPECT_EQ(kernel.addressSpace().findSuperpage(0x10001000),
              nullptr);
}

TEST_F(KernelFixture, RemapInstallsMmcMappings)
{
    addData();
    kernel.remap(0x10000000, 16 * 1024, 0);
    const ShadowSuperpage *sp =
        kernel.addressSpace().findSuperpage(0x10000000);
    ASSERT_NE(sp, nullptr);
    // Every base page of the superpage must translate through the
    // MMC to the frame backing the original page.
    const Addr spi0 = map.shadowPageIndex(sp->shadowBase);
    for (Addr i = 0; i < sp->numBasePages(); ++i) {
        const ShadowPte pte = memsys.mmc().shadowTable().entry(spi0 + i);
        EXPECT_TRUE(pte.valid);
        EXPECT_EQ(pte.realPfn,
                  kernel.addressSpace().frameOf(0x10000000 +
                                                (i << basePageShift)));
    }
}

TEST_F(KernelFixture, RemapFillsTlbViaMissWithSuperpageEntry)
{
    addData();
    kernel.remap(0x10000000, 16 * 1024, 0);
    kernel.handleTlbMiss(0x10002000, AccessType::Read, 0);
    const auto entry = tlb.probe(0x10002000);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->sizeClass, 1u);
    const ShadowSuperpage *sp =
        kernel.addressSpace().findSuperpage(0x10000000);
    EXPECT_EQ(entry->pbase, sp->shadowBase);
}

TEST_F(KernelFixture, RemapPurgesStaleTlbEntries)
{
    addData();
    // Touch the page so a base-page TLB entry exists.
    kernel.handleTlbMiss(0x10000000, AccessType::Read, 0);
    EXPECT_TRUE(tlb.probe(0x10000000).has_value());
    kernel.remap(0x10000000, 16 * 1024, 1000);
    // Old base-page mapping must be gone (superpage inserted on next
    // miss instead).
    const auto entry = tlb.probe(0x10000000);
    EXPECT_FALSE(entry.has_value());
}

TEST_F(KernelFixture, RemapFlushesCachedLines)
{
    addData();
    kernel.handleTlbMiss(0x10000000, AccessType::Read, 0);
    const Addr pfn = kernel.addressSpace().frameOf(0x10000000);
    const Addr paddr = pfn << basePageShift;
    cache.access(0x10000000, paddr, true, 100);
    EXPECT_TRUE(cache.probe(0x10000000, paddr));
    kernel.remap(0x10000000, 16 * 1024, 1000);
    EXPECT_FALSE(cache.probe(0x10000000, paddr));
}

TEST_F(KernelFixture, RemapIsIdempotent)
{
    addData();
    kernel.remap(0x10000000, 64 * 1024, 0);
    const auto count = kernel.addressSpace().superpages().size();
    kernel.remap(0x10000000, 64 * 1024, 1000);
    EXPECT_EQ(kernel.addressSpace().superpages().size(), count);
}

TEST_F(KernelFixture, RemapChargesFlushCycles)
{
    addData();
    // Materialise 4 pages first so remap only flushes.
    for (Addr off = 0; off < 4; ++off)
        kernel.handleTlbMiss(0x10000000 + (off << basePageShift),
                             AccessType::Read, 0);
    kernel.remap(0x10000000, 16 * 1024, 1000);
    // §3.3: ~1,400 cycles per 4 KB page of flushing.
    const Cycles flush = kernel.remapFlushCycles();
    EXPECT_GE(flush, 4 * 1000u);
    EXPECT_LE(flush, 4 * 2500u);
    EXPECT_GT(kernel.remapTotalCycles(), flush);
}

TEST_F(KernelFixture, RemapRangeCrossingRegionEndIsFatal)
{
    kernel.addressSpace().addRegion("small", 0x10000000, 8 * 1024, {});
    EXPECT_THROW(kernel.remap(0x10000000, 64 * 1024, 0), FatalError);
}

TEST_F(KernelNoMtlbFixture, RemapIsAdvisoryWithoutMtlb)
{
    addData();
    const Cycles cost = kernel.remap(0x10000000, MB, 0);
    EXPECT_GT(cost, 0u);
    EXPECT_TRUE(kernel.addressSpace().superpages().empty());
    // Misses keep producing base-page entries.
    kernel.handleTlbMiss(0x10000000, AccessType::Read, 0);
    EXPECT_EQ(tlb.probe(0x10000000)->sizeClass, 0u);
}

TEST_F(KernelFixture, SuperpagePolicyCanBeDisabled)
{
    KernelConfig kc;
    kc.superpagesEnabled = false;
    stats::StatGroup g2("t2");
    Kernel plain(kc, map, tlb, uitlb, cache, memsys, g2);
    plain.addressSpace().addRegion("data", 0x10000000, MB, {});
    plain.remap(0x10000000, MB, 0);
    EXPECT_TRUE(plain.addressSpace().superpages().empty());
}

TEST_F(KernelFixture, SbrkGrantsAndPreallocates)
{
    kernel.initHeap(0x20000000, 64 * MB);
    const auto r1 = kernel.sbrk(1000, 0);
    EXPECT_EQ(r1.oldBreak, 0x20000000u);
    // The 8 MB default preallocation was remapped in one go.
    EXPECT_FALSE(kernel.addressSpace().superpages().empty());
    const Cycles first_cost = r1.cycles;

    // Subsequent small requests are satisfied without kernel work.
    const auto r2 = kernel.sbrk(1000, 1000);
    EXPECT_EQ(r2.oldBreak, 0x20000000u + 1000);
    EXPECT_LT(r2.cycles, 100u);
    EXPECT_LT(r2.cycles, first_cost);
}

TEST_F(KernelFixture, SbrkPreallocSizeIsAdjustable)
{
    kernel.initHeap(0x20000000, 64 * MB);
    kernel.setSbrkPrealloc(64 * 1024);
    kernel.sbrk(1000, 0);
    // Only ~64 KB remapped: the frontier is close to the break.
    Addr covered = 0;
    for (const auto &[vbase, sp] :
         kernel.addressSpace().superpages())
        covered += sp.size();
    EXPECT_LE(covered, 128 * 1024u);
}

TEST_F(KernelFixture, SbrkBeyondReservationIsFatal)
{
    kernel.initHeap(0x20000000, MB);
    EXPECT_THROW(kernel.sbrk(2 * MB, 0), FatalError);
}

TEST_F(KernelFixture, SbrkWithoutInitIsFatal)
{
    EXPECT_THROW(kernel.sbrk(1000, 0), FatalError);
}

TEST_F(KernelFixture, PagewiseSwapWritesOnlyDirtyPages)
{
    addData();
    kernel.remap(0x10000000, 64 * 1024, 0);     // 16 base pages

    // Dirty exactly 3 base pages through the memory system (as the
    // cache would: exclusive fills).
    const ShadowSuperpage *sp =
        kernel.addressSpace().findSuperpage(0x10000000);
    for (unsigned i = 0; i < 3; ++i)
        memsys.lineFill(sp->shadowBase + i * basePageSize, true, 0);
    // And read (not write) 2 more.
    for (unsigned i = 3; i < 5; ++i)
        memsys.lineFill(sp->shadowBase + i * basePageSize, false, 0);

    const auto result =
        kernel.swapOutSuperpagePagewise(0x10000000, 10000);
    EXPECT_EQ(result.pagesWritten, 3u);     // only dirty ones (§2.5)
    EXPECT_EQ(result.pagesClean, 13u);
}

TEST_F(KernelFixture, WholeSwapWritesEveryPage)
{
    addData();
    kernel.remap(0x10000000, 64 * 1024, 0);
    const auto result =
        kernel.swapOutSuperpageWhole(0x10000000, 10000);
    EXPECT_EQ(result.pagesWritten, 16u);    // conventional superpage
    EXPECT_EQ(result.pagesClean, 0u);
}

TEST_F(KernelFixture, PagewiseSwapFlushesCacheBeforeReadingDirtyBit)
{
    // A store that hits a shared-filled line dirties it in the cache
    // with no memory traffic at all: the modification reaches the
    // MTLB only when the line is written back. The pagewise swap
    // must therefore flush the page's lines *before* reading the
    // dirty bit — reading first would see a stale clean bit and
    // drop the page's data.
    addData();
    kernel.remap(0x10000000, 64 * 1024, 0);
    const ShadowSuperpage *sp =
        kernel.addressSpace().findSuperpage(0x10000000);

    cache.access(0x10000000, sp->shadowBase, false, 0);  // shared fill
    cache.access(0x10000000, sp->shadowBase, true, 10);  // silent hit

    const auto result =
        kernel.swapOutSuperpagePagewise(0x10000000, 10000);
    EXPECT_EQ(result.pagesWritten, 1u);
    EXPECT_EQ(result.pagesClean, 15u);
}

TEST_F(KernelFixture, WholeSwapWritesOnlyPresentPages)
{
    // The conventional-superpage flavour writes every *present* page
    // regardless of dirtiness; pages already on disk are skipped.
    addData();
    kernel.remap(0x10000000, 64 * 1024, 0);
    kernel.swapOutSuperpagePagewise(0x10000000, 10000);

    // Reload exactly one base page.
    kernel.handleShadowPageFault(0x10000000 + 3 * basePageSize, 20000);

    const auto result =
        kernel.swapOutSuperpageWhole(0x10000000, 30000);
    EXPECT_EQ(result.pagesWritten, 1u);
    EXPECT_EQ(result.pagesClean, 0u);
}

TEST_F(KernelFixture, PagewiseSwapSeesMtlbDeferredDirtyBits)
{
    // The dirty bit may still be deferred in the MTLB (never synced
    // to the in-DRAM table) when the swap runs; readShadowEntry must
    // surface it anyway.
    addData();
    kernel.remap(0x10000000, 16 * 1024, 0);
    const ShadowSuperpage *sp =
        kernel.addressSpace().findSuperpage(0x10000000);
    memsys.lineFill(sp->shadowBase + basePageSize, true, 0);

    const auto result =
        kernel.swapOutSuperpagePagewise(0x10000000, 10000);
    EXPECT_EQ(result.pagesWritten, 1u);
    EXPECT_EQ(result.pagesClean, 3u);
}

TEST_F(KernelFixture, RemapNeverSpansAnExistingSuperpage)
{
    // Regression (found by the differential fuzzer): a remap whose
    // maximal aligned chunk would swallow a superpage that starts
    // *inside* the chunk must cap the chunk instead — building over
    // it would double-map every frame the old superpage covers.
    addData();
    kernel.remap(0x100c4000, 16 * 1024, 0);      // 16 KB superpage
    kernel.remap(0x100b4000, 256 * 1024, 0);     // spans it

    // The original superpage survives untouched...
    const ShadowSuperpage *old_sp =
        kernel.addressSpace().findSuperpage(0x100c4000);
    ASSERT_NE(old_sp, nullptr);
    EXPECT_EQ(old_sp->vbase, 0x100c4000u);
    EXPECT_EQ(old_sp->sizeClass, 1u);

    // ...and no two superpage records overlap.
    Addr prev_end = 0;
    for (const auto &[vbase, sp] :
         kernel.addressSpace().superpages()) {
        EXPECT_GE(vbase, prev_end);
        prev_end = vbase + sp.size();
    }

    // Every shadow PTE maps a distinct real frame.
    std::set<Addr> frames;
    for (const auto &[vbase, sp] :
         kernel.addressSpace().superpages()) {
        const Addr spi0 = map.shadowPageIndex(sp.shadowBase);
        for (Addr i = 0; i < sp.numBasePages(); ++i) {
            const ShadowPte pte =
                memsys.mmc().shadowTable().entry(spi0 + i);
            if (!pte.valid)
                continue;
            EXPECT_TRUE(frames.insert(pte.realPfn).second)
                << "frame 0x" << std::hex << pte.realPfn
                << " double-mapped";
        }
    }
}

TEST_F(KernelFixture, SwapLeavesTlbSuperpageEntryIntact)
{
    addData();
    kernel.remap(0x10000000, 16 * 1024, 0);
    kernel.handleTlbMiss(0x10000000, AccessType::Read, 0);
    kernel.swapOutSuperpagePagewise(0x10000000, 10000);
    // §2.1: the superpage TLB entry survives; the MMC faults instead.
    EXPECT_TRUE(tlb.probe(0x10000000).has_value());
}

TEST_F(KernelFixture, ShadowPageFaultReloadsPage)
{
    addData();
    kernel.remap(0x10000000, 16 * 1024, 0);
    const ShadowSuperpage *sp =
        kernel.addressSpace().findSuperpage(0x10000000);
    const Addr shadow0 = sp->shadowBase;
    kernel.swapOutSuperpagePagewise(0x10000000, 10000);

    // An access now faults at the MMC.
    memsys.lineFill(shadow0, false, 20000);
    EXPECT_TRUE(memsys.faulted());

    // The kernel reloads the page; the access then succeeds.
    const Cycles cost = kernel.handleShadowPageFault(0x10000000, 20000);
    EXPECT_GE(cost, kernel.config().diskReadCycles);
    memsys.lineFill(shadow0, false, 30000);
    EXPECT_FALSE(memsys.faulted());
}

TEST_F(KernelFixture, SwapInGetsFreshFrame)
{
    addData();
    kernel.remap(0x10000000, 16 * 1024, 0);
    const Addr old_pfn = kernel.addressSpace().frameOf(0x10000000);
    kernel.swapOutSuperpagePagewise(0x10000000, 10000);
    EXPECT_FALSE(kernel.addressSpace().isPagePresent(0x10000000));
    kernel.handleShadowPageFault(0x10000000, 20000);
    EXPECT_TRUE(kernel.addressSpace().isPagePresent(0x10000000));
    // (The frame may or may not differ; what matters is the MMC
    // mapping points at whatever frame is installed now.)
    const ShadowSuperpage *sp =
        kernel.addressSpace().findSuperpage(0x10000000);
    const ShadowPte pte = memsys.mmc().shadowTable().entry(
        map.shadowPageIndex(sp->shadowBase));
    EXPECT_TRUE(pte.valid);
    EXPECT_EQ(pte.realPfn, kernel.addressSpace().frameOf(0x10000000));
    (void)old_pfn;
}

TEST_F(KernelFixture, TlbMissCyclesAccumulate)
{
    addData();
    EXPECT_EQ(kernel.tlbMissCycles(), 0u);
    kernel.handleTlbMiss(0x10000000, AccessType::Read, 0);
    const Cycles after_one = kernel.tlbMissCycles();
    EXPECT_GT(after_one, 0u);
    tlb.purgeAll();
    kernel.handleTlbMiss(0x10000000, AccessType::Read, 1000);
    EXPECT_GT(kernel.tlbMissCycles(), after_one);
}

TEST_F(KernelFixture, HugeRemapRunsOutOfBucketsGracefully)
{
    // Remapping far more than the 16 MB bucket supply (Figure 2)
    // must warn and leave the tail base-paged, not crash. 40 MB of
    // data needs 2.5 of the 16 x 16 MB buckets — fine; but after
    // draining all buckets of every size the allocator must give up
    // cleanly. Use a small dedicated region to keep the test fast:
    // drain class-1 buckets by remapping 1024 separate 16 KB pieces,
    // then one more.
    kernel.addressSpace().addRegion("big", 0x30000000, 48 * MB, {});
    for (unsigned i = 0; i < 1025; ++i) {
        const Addr base = 0x30000000 + Addr{i} * 32 * 1024;
        kernel.remap(base, 16 * 1024, i);
    }
    // 1024 succeeded, the 1025th fell back to a larger bucket (64 KB
    // region for a 16 KB superpage is not possible — fallback goes
    // *down* in size, so it simply fails and stays base-paged).
    EXPECT_EQ(kernel.addressSpace().superpages().size(), 1024u);
}
