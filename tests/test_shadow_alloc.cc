/**
 * @file
 * Unit tests for the shadow-region allocators: the paper's bucket
 * scheme (Figure 2) and the buddy variant (§2.4's future work).
 */

#include <gtest/gtest.h>

#include <set>

#include "base/random.hh"
#include "os/shadow_alloc.hh"

using namespace mtlbsim;

namespace
{
constexpr Addr MB = 1024 * 1024;
const AddrRange shadow512{0x80000000, 512 * MB};
}

TEST(BucketAlloc, Figure2PartitionCounts)
{
    const auto p = BucketShadowAllocator::defaultPartition();
    EXPECT_EQ(p[1], 1024u);     // 16 KB
    EXPECT_EQ(p[2], 256u);      // 64 KB
    EXPECT_EQ(p[3], 128u);      // 256 KB
    EXPECT_EQ(p[4], 64u);       // 1 MB
    EXPECT_EQ(p[5], 32u);       // 4 MB
    EXPECT_EQ(p[6], 16u);       // 16 MB

    // Figure 2's extents must total exactly 512 MB.
    Addr total = 0;
    for (unsigned c = 1; c < numPageSizeClasses; ++c)
        total += p[c] * pageSizeForClass(c);
    EXPECT_EQ(total, 512 * MB);
}

TEST(BucketAlloc, AllocationsAreAlignedAndInRange)
{
    BucketShadowAllocator alloc(
        shadow512, BucketShadowAllocator::defaultPartition());
    for (unsigned c = minShadowSizeClass; c <= maxShadowSizeClass;
         ++c) {
        const auto base = alloc.allocate(c);
        ASSERT_TRUE(base.has_value());
        EXPECT_EQ(*base & (pageSizeForClass(c) - 1), 0u)
            << "misaligned class " << c;
        EXPECT_TRUE(shadow512.contains(*base));
        EXPECT_TRUE(shadow512.contains(*base + pageSizeForClass(c) - 1));
    }
}

TEST(BucketAlloc, AllocationsDoNotOverlap)
{
    BucketShadowAllocator alloc(
        shadow512, BucketShadowAllocator::defaultPartition());
    std::set<Addr> starts;
    // Drain two full buckets and spot-check disjointness.
    for (int i = 0; i < 1024; ++i) {
        const auto a = alloc.allocate(1);
        ASSERT_TRUE(a.has_value());
        EXPECT_TRUE(starts.insert(*a).second);
    }
    for (int i = 0; i < 16; ++i) {
        const auto a = alloc.allocate(6);
        ASSERT_TRUE(a.has_value());
        // A 16 MB region must not contain any allocated 16 KB start.
        for (Addr s : starts)
            EXPECT_FALSE(s >= *a && s < *a + 16 * MB);
    }
}

TEST(BucketAlloc, BucketExhaustionReturnsNullopt)
{
    BucketShadowAllocator alloc(
        shadow512, BucketShadowAllocator::defaultPartition());
    for (int i = 0; i < 16; ++i)
        EXPECT_TRUE(alloc.allocate(6).has_value());
    EXPECT_FALSE(alloc.allocate(6).has_value());
    // Other buckets are unaffected — the weakness the buddy scheme
    // fixes.
    EXPECT_TRUE(alloc.allocate(5).has_value());
}

TEST(BucketAlloc, FreeReplenishesBucket)
{
    BucketShadowAllocator alloc(
        shadow512, BucketShadowAllocator::defaultPartition());
    const auto a = alloc.allocate(4);
    const Addr before = alloc.available(4);
    alloc.free(*a, 4);
    EXPECT_EQ(alloc.available(4), before + 1);
}

TEST(BucketAlloc, AvailableMatchesFigure2)
{
    BucketShadowAllocator alloc(
        shadow512, BucketShadowAllocator::defaultPartition());
    EXPECT_EQ(alloc.available(1), 1024u);
    EXPECT_EQ(alloc.available(6), 16u);
    EXPECT_EQ(alloc.available(0), 0u);
}

TEST(BucketAlloc, RejectsIllegalClasses)
{
    BucketShadowAllocator alloc(
        shadow512, BucketShadowAllocator::defaultPartition());
    EXPECT_THROW(alloc.allocate(0), FatalError);
    EXPECT_THROW(alloc.allocate(7), FatalError);
}

TEST(BuddyAlloc, AllocatesAlignedRegions)
{
    BuddyShadowAllocator alloc(shadow512);
    for (unsigned c = minShadowSizeClass; c <= maxShadowSizeClass;
         ++c) {
        const auto base = alloc.allocate(c);
        ASSERT_TRUE(base.has_value());
        EXPECT_EQ(*base & (pageSizeForClass(c) - 1), 0u);
    }
}

TEST(BuddyAlloc, SplitsLargerBlocksOnDemand)
{
    // A shadow region of exactly one 16 MB block can still satisfy
    // 16 KB requests by splitting.
    BuddyShadowAllocator alloc({0x80000000, 16 * MB});
    const auto a = alloc.allocate(1);
    ASSERT_TRUE(a.has_value());
    // 16 MB / 16 KB = 1024 regions obtainable.
    EXPECT_EQ(alloc.available(1), 1023u);
}

TEST(BuddyAlloc, CoalescesOnFree)
{
    BuddyShadowAllocator alloc({0x80000000, 16 * MB});
    // Drain the whole region as 16 KB blocks.
    std::vector<Addr> blocks;
    while (auto a = alloc.allocate(1))
        blocks.push_back(*a);
    EXPECT_EQ(blocks.size(), 1024u);
    EXPECT_FALSE(alloc.allocate(6).has_value());

    // Free everything: the region must recombine into one 16 MB
    // block.
    for (Addr b : blocks)
        alloc.free(b, 1);
    EXPECT_TRUE(alloc.allocate(6).has_value());
}

TEST(BuddyAlloc, NoSizeExhaustionWhileSpaceRemains)
{
    // The bucket scheme's 16 MB bucket exhausts after 16 allocations
    // (Figure 2); the buddy allocator keeps going until space truly
    // runs out.
    BuddyShadowAllocator alloc(shadow512);
    unsigned count = 0;
    while (alloc.allocate(6).has_value())
        ++count;
    EXPECT_EQ(count, 32u);      // 512 MB / 16 MB
}

TEST(BuddyAlloc, MixedSizesDoNotOverlap)
{
    BuddyShadowAllocator alloc({0x80000000, 64 * MB});
    struct Block
    {
        Addr base;
        Addr size;
    };
    std::vector<Block> blocks;
    Random rng(5);
    for (int i = 0; i < 200; ++i) {
        const unsigned c = minShadowSizeClass +
                           static_cast<unsigned>(rng.below(
                               maxShadowSizeClass -
                               minShadowSizeClass + 1));
        const auto a = alloc.allocate(c);
        if (!a)
            continue;
        blocks.push_back({*a, pageSizeForClass(c)});
    }
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        for (std::size_t j = i + 1; j < blocks.size(); ++j) {
            const bool overlap =
                blocks[i].base < blocks[j].base + blocks[j].size &&
                blocks[j].base < blocks[i].base + blocks[i].size;
            EXPECT_FALSE(overlap)
                << "blocks " << i << " and " << j << " overlap";
        }
    }
}

TEST(BuddyAlloc, FreeThenReallocateStress)
{
    BuddyShadowAllocator alloc({0x80000000, 64 * MB});
    Random rng(11);
    std::vector<std::pair<Addr, unsigned>> live;
    for (int step = 0; step < 2000; ++step) {
        if (live.empty() || rng.chance(3, 5)) {
            const unsigned c = minShadowSizeClass +
                               static_cast<unsigned>(rng.below(4));
            if (auto a = alloc.allocate(c))
                live.emplace_back(*a, c);
        } else {
            const auto idx = rng.below(live.size());
            alloc.free(live[idx].first, live[idx].second);
            live.erase(live.begin() + static_cast<long>(idx));
        }
    }
    // Release everything and verify full recombination.
    for (auto &[base, c] : live)
        alloc.free(base, c);
    unsigned count = 0;
    while (alloc.allocate(6).has_value())
        ++count;
    EXPECT_EQ(count, 4u);   // 64 MB / 16 MB
}

TEST(BucketAlloc, RequiresAlignedShadowBase)
{
    // Largest-first layout requires the base aligned to the largest
    // allocated class.
    auto p = BucketShadowAllocator::defaultPartition();
    EXPECT_THROW(BucketShadowAllocator({0x80004000, 512 * MB}, p),
                 FatalError);
}

TEST(BuddyAlloc, RequiresAlignedShadowBase)
{
    EXPECT_THROW(BuddyShadowAllocator({0x80004000, 32 * MB}),
                 FatalError);
}
