/**
 * @file
 * Tests for the batched same-page access engine (src/cpu/cpu.hh).
 *
 * The engine's contract is absolute: a machine with batching on
 * produces byte-identical statistics and cycle counts to one with it
 * off, on every workload and config. Each test here drives a
 * specific batch-breaking event — epoch bump mid-run, TLB purge,
 * superpage promotion, recoloring, swap-out, L0 eviction, page
 * crossing, cache-line fill — through the shared equivalence
 * harness (tests/equivalence.hh), plus unit checks on the deferred
 * counter flush discipline itself.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>

#include "equivalence.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace mtlbsim;

namespace
{

constexpr Addr MB = 1024 * 1024;
constexpr Addr dataBase = 0x10000000;

SystemConfig
machine(bool batch_on, unsigned window = 4096, unsigned l0 = 512)
{
    SystemConfig c;
    c.installedBytes = 64 * MB;
    c.cpu.l0Entries = l0;
    c.cpu.batchEnable = batch_on;
    c.cpu.batchWindow = window;
    return c;
}

/**
 * The canonical batch-breaking drive: a hot same-page loop long
 * enough to establish a deep batched run, the event under test fired
 * in the middle of it, then more same-page traffic so the engine
 * must recover through the slow path. The event is a function of the
 * System only, so the drive is identical under every config.
 */
void
hotLoopWithEvent(System &sys,
                 const std::function<void(System &)> &event)
{
    sys.kernel().addressSpace().addRegion("data", dataBase, 4 * MB,
                                          {});
    for (int i = 0; i < 2000; ++i) {
        if (i % 3 == 0)
            sys.cpu().store(dataBase + (i % 128) * 8);
        else
            sys.cpu().load(dataBase + (i % 128) * 8);
        if (i == 1000)
            event(sys);
    }
}

void
expectEventEquivalent(const std::function<void(System &)> &event,
                      const std::string &label)
{
    testeq::expectConfigsEquivalent(
        machine(false), machine(true),
        [&event](System &sys) { hotLoopWithEvent(sys, event); },
        label);
}

} // namespace

TEST(BatchEngine, EpochBumpMidRunBreaksTheBatch)
{
    // A bare epoch bump with no other state change: the engine must
    // drop the run and re-establish, with no statistical trace.
    expectEventEquivalent(
        [](System &sys) { sys.tlb().bumpTranslationEpoch(); },
        "epoch bump mid-run");
}

TEST(BatchEngine, TlbPurgeMidRunBreaksTheBatch)
{
    expectEventEquivalent(
        [](System &sys) {
            sys.tlb().purgeRange(dataBase, basePageSize);
        },
        "TLB purge mid-run");
}

TEST(BatchEngine, PromotionMidRunBreaksTheBatch)
{
    // remap() promotes the hot region onto a shadow superpage: the
    // physical (shadow) frame behind the batch's vpage changes.
    expectEventEquivalent(
        [](System &sys) { sys.cpu().remap(dataBase, MB); },
        "superpage promotion mid-run");
}

TEST(BatchEngine, RecolorMidRunBreaksTheBatch)
{
    // Recoloring moves the page to a different frame; physically
    // indexed cache is recoloring's habitat.
    auto config_off = machine(false);
    auto config_on = machine(true);
    config_off.cache.virtuallyIndexed = false;
    config_on.cache.virtuallyIndexed = false;
    testeq::expectConfigsEquivalent(
        config_off, config_on,
        [](System &sys) {
            hotLoopWithEvent(sys, [](System &s) {
                const unsigned color = s.kernel().colorOf(dataBase);
                s.cpu().recolorPage(dataBase, (color + 1) % 128);
            });
        },
        "recolor mid-run");
}

TEST(BatchEngine, SwapOutMidRunBreaksTheBatch)
{
    // Promote first so a superpage exists, re-heat the batch, then
    // swap it out mid-run: the following access takes a shadow page
    // fault, the heaviest possible slow path.
    testeq::expectConfigsEquivalent(
        machine(false), machine(true),
        [](System &sys) {
            sys.kernel().addressSpace().addRegion("data", dataBase,
                                                  4 * MB, {});
            sys.cpu().remap(dataBase, MB);
            for (int i = 0; i < 2000; ++i) {
                sys.cpu().store(dataBase + (i % 64) * 8);
                if (i == 1000) {
                    sys.kernel().swapOutSuperpagePagewise(
                        dataBase, sys.cpu().now());
                }
            }
        },
        "swap-out mid-run");
}

TEST(BatchEngine, L0EvictionLeavesIdentity)
{
    // A 1-entry L0 thrashes between two pages that alias its only
    // slot; the batch engine sits in front of the L0 and must stay
    // equivalent whichever structure the slow path lands in.
    testeq::expectConfigsEquivalent(
        machine(false, 4096, 1), machine(true, 4096, 1),
        [](System &sys) {
            sys.kernel().addressSpace().addRegion("data", dataBase,
                                                  4 * MB, {});
            for (int i = 0; i < 3000; ++i) {
                const Addr page = (i % 7 < 4) ? 0 : basePageSize;
                sys.cpu().load(dataBase + page + (i % 32) * 8);
            }
        },
        "1-entry L0 thrash");
}

TEST(BatchEngine, PageBoundaryWalkBreaksPerPage)
{
    // A sequential walk crosses a page boundary every 4 KB; each
    // crossing must fall back and re-establish on the next page.
    testeq::expectConfigsEquivalent(
        machine(false), machine(true),
        [](System &sys) {
            sys.kernel().addressSpace().addRegion("data", dataBase,
                                                  4 * MB, {});
            for (Addr off = 0; off < 2 * MB; off += 8)
                sys.cpu().load(dataBase + off);
        },
        "sequential page-boundary walk");
}

TEST(BatchEngine, CacheLineFillMidPageBreaksTheBatch)
{
    // Two regions whose lines conflict in the direct-mapped cache
    // (same index, cache-size apart): ping-ponging between them
    // forces a line fill mid-page, which must always take the slow
    // path (fills touch the bus, the MMC, and the miss stats).
    testeq::expectConfigsEquivalent(
        machine(false), machine(true),
        [](System &sys) {
            const Addr cache_bytes =
                sys.config().cache.sizeBytes;
            sys.kernel().addressSpace().addRegion(
                "a", dataBase, cache_bytes + 4 * MB, {});
            for (int i = 0; i < 2000; ++i) {
                const Addr alias =
                    (i % 5 == 4) ? cache_bytes : 0;
                sys.cpu().load(dataBase + alias + (i % 16) * 8);
            }
        },
        "conflict-miss ping-pong");
}

TEST(BatchEngine, ReadOnlyPageLoadsStayEquivalent)
{
    // Loads on a read-only page batch (writable=false only blocks
    // stores); the engine must never let a batched access bypass the
    // protection model.
    testeq::expectConfigsEquivalent(
        machine(false), machine(true),
        [](System &sys) {
            sys.kernel().addressSpace().addRegion(
                "ro", dataBase, MB, PageProtection{false, true});
            for (int i = 0; i < 2000; ++i)
                sys.cpu().load(dataBase + (i % 256) * 4);
        },
        "read-only page loads");
}

TEST(BatchEngine, DegenerateWindowsStayEquivalent)
{
    // Window 1 flushes every access (maximal flush traffic); a huge
    // window defers maximally. Both must be invisible.
    auto drive = [](System &sys) {
        sys.kernel().addressSpace().addRegion("data", dataBase,
                                              4 * MB, {});
        std::uint64_t lcg = 0x9E3779B97F4A7C15ull;
        auto next = [&lcg]() {
            lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
            return lcg >> 33;
        };
        for (int i = 0; i < 8000; ++i) {
            // Mostly same-page runs with occasional jumps.
            const Addr va = (next() % 8 < 7)
                                ? dataBase + (next() % basePageSize)
                                : dataBase + (next() % (4 * MB));
            if (next() % 3 == 0)
                sys.cpu().store(va);
            else
                sys.cpu().load(va);
            if (i == 4000)
                sys.cpu().remap(dataBase, MB);
        }
    };
    testeq::expectConfigsEquivalent(machine(false), machine(true, 1),
                                    drive, "window 1");
    testeq::expectConfigsEquivalent(machine(false),
                                    machine(true, 1u << 20), drive,
                                    "window 2^20");
}

TEST(BatchEngine, FullStackEquivalentToBareMachine)
{
    // The composition claim: L0 + batching together versus neither.
    testeq::expectConfigsEquivalent(
        machine(false, 4096, 0), machine(true),
        [](System &sys) {
            auto workload = makeWorkload("em3d", 0.02);
            workload->setup(sys);
            workload->run(sys);
        },
        "em3d, l0+batch vs bare");
}

TEST(BatchEngine, PeriodicAuditInterlockFiresIdentically)
{
    // With periodic auditing armed, the check hook must fire at the
    // same cycle boundaries whether or not accesses are batched (a
    // due check forces the slow path), and every audit must be clean
    // mid-batch. The audit stats land in the tree, so identity also
    // proves the fire times matched.
    auto config_off = machine(false);
    auto config_on = machine(true);
    config_off.check.enabled = true;
    config_off.check.interval = 5000;
    config_on.check.enabled = true;
    config_on.check.interval = 5000;
    testeq::expectConfigsEquivalent(
        config_off, config_on,
        [](System &sys) {
            sys.kernel().addressSpace().addRegion("data", dataBase,
                                                  4 * MB, {});
            for (int i = 0; i < 20000; ++i)
                sys.cpu().load(dataBase + (i % 512) * 8);
            sys.audit();
        },
        "periodic audits while batching");
}

TEST(BatchEngine, DeferredCountsFlushOnRead)
{
    // Unit check on the flush discipline: a batched run defers the
    // five per-access counts, dataAccesses() realizes them, and the
    // dirty bit is never deferred (kernel swap paths read it).
    System sys(machine(true));
    sys.kernel().addressSpace().addRegion("data", dataBase, MB, {});

    sys.cpu().store(dataBase);              // slow: establishes
    for (int i = 0; i < 99; ++i)
        sys.cpu().store(dataBase + 8 * (i % 4));   // batched

    // The store's architectural side effect is immediate even while
    // its stat increment is pending.
    const auto entry = sys.tlb().probe(dataBase);
    ASSERT_TRUE(entry.has_value());
    EXPECT_TRUE(sys.cache().probeDirty(dataBase,
                                       entry->translate(dataBase)));

    // dataAccesses() is a flush point: all 100 stores visible.
    EXPECT_EQ(sys.cpu().dataAccesses(), 100u);

    // And the flushed tree satisfies the auditor's identities.
    sys.audit();
    EXPECT_EQ(sys.cache().accesses(),
              sys.cache().hits() + sys.cache().misses());
}

TEST(BatchEngine, DisabledEngineNeverDefers)
{
    System sys(machine(false));
    sys.kernel().addressSpace().addRegion("data", dataBase, MB, {});
    for (int i = 0; i < 50; ++i)
        sys.cpu().load(dataBase + 8 * i);
    // With the engine off nothing is ever pending: a flush point
    // (dataAccesses) must not move any counter.
    const double cache_before = sys.cache().accesses();
    EXPECT_EQ(sys.cpu().dataAccesses(), 50u);
    EXPECT_EQ(sys.cache().accesses(), cache_before);
}
