/**
 * @file
 * §5 ablation: online superpage promotion vs explicit instrumentation.
 *
 * The paper's experiments instrument programs by hand (remap() calls
 * and a modified sbrk()). Related work (Romer et al.) promotes
 * regions online, paying promotion costs only where observed TLB
 * misses justify them; the paper notes such a policy "would be
 * useful ... although the specific parameters would need to be
 * tweaked to reflect the reduced cost of exploiting superpages" in
 * the shadow-memory design.
 *
 * This harness runs the five benchmarks with their explicit
 * instrumentation disabled and compares:
 *
 *   none      - base pages only (no superpages ever);
 *   explicit  - the paper's hand instrumentation (reference);
 *   online    - no instrumentation; the kernel's competitive
 *               promotion policy decides, at several thresholds.
 *
 * Usage: promotion_ablation [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "workloads/experiment.hh"

using namespace mtlbsim;

namespace
{

ExperimentResult
runMode(const std::string &name, double scale, bool explicit_remap,
        bool online, Cycles threshold = 20'000)
{
    SystemConfig config = paperConfig(96, true);
    // Coarse-grained invariant auditing: cheap insurance that the
    // ablation exercises only consistent translation state.
    config.check.enabled = true;
    config.check.interval = 5'000'000;
    config.kernel.honorExplicitRemap = explicit_remap;
    config.kernel.onlinePromotion = online;
    config.kernel.promotionThresholdCycles = threshold;
    return runExperiment(name, scale, config);
}

} // namespace

int
main(int argc, char **argv)
{
    const double scale = argc > 1 ? std::atof(argv[1]) : 0.5;
    setInformEnabled(false);

    std::printf("=== §5 ablation: online superpage promotion "
                "(96-entry TLB, 128-entry 2-way MTLB, scale %.2f)\n\n",
                scale);
    std::printf("%-12s %14s %14s %14s %14s %12s\n", "workload",
                "none", "explicit", "online(20k)", "online(5k)",
                "sp(online)");

    for (const auto &name : allWorkloadNames()) {
        const auto none = runMode(name, scale, false, false);
        const auto expl = runMode(name, scale, true, false);
        const auto on20 = runMode(name, scale, false, true, 20'000);
        const auto on5 = runMode(name, scale, false, true, 5'000);
        std::fprintf(stderr, "  done: %s\n", name.c_str());

        const double base = static_cast<double>(none.totalCycles);
        std::printf("%-12s %14.3f %14.3f %14.3f %14.3f %12zu\n",
                    name.c_str(), 1.0,
                    static_cast<double>(expl.totalCycles) / base,
                    static_cast<double>(on20.totalCycles) / base,
                    static_cast<double>(on5.totalCycles) / base,
                    on5.superpages);
    }

    std::printf("\n(normalized runtime; lower is better. 'sp' = "
                "superpages the online policy created.)\n");
    std::printf("Online promotion recovers most of the explicit "
                "instrumentation's benefit with no\nprogram changes; "
                "a lower threshold promotes more eagerly, as the "
                "paper's §5 remark\nabout retuned parameters "
                "anticipates.\n");
    return 0;
}
