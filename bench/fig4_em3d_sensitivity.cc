/**
 * @file
 * Figure 4 reproduction: em3d sensitivity to MTLB size and
 * associativity.
 *
 * Figure 4(A): total runtime of em3d on a 128-entry CPU TLB without
 * an MTLB vs MTLB configurations sweeping size {64,128,256,512} and
 * associativity {1,2,4,8}. The paper's finding: the no-MTLB system's
 * ~2% advantage over the default 128-entry/2-way MTLB is erased by
 * doubling MTLB size or associativity, with diminishing returns
 * beyond that.
 *
 * Figure 4(B): average time per cache fill for the same
 * configurations. The added delay vs the standard system ranges from
 * ~10 cycles (small, low-associativity MTLBs) down to ~1.5 cycles,
 * with a 1-MMC-cycle floor from the shadow check (§2.2).
 *
 * The design space comes from sweep::fig4Matrix and runs on the
 * parallel SweepRunner; results are identical for any job count.
 *
 * Usage: fig4_em3d_sensitivity [scale] [jobs]
 */

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "sweep/matrix.hh"
#include "workloads/experiment.hh"

using namespace mtlbsim;

int
main(int argc, char **argv)
{
    const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
    const unsigned jobs =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 0;
    setInformEnabled(false);

    const std::vector<unsigned> sizes = {64, 128, 256, 512};
    const std::vector<unsigned> assocs = {1, 2, 4, 8};

    std::printf("=== Figure 4: em3d sensitivity to MTLB size and "
                "associativity (128-entry CPU TLB, scale %.2f)\n\n",
                scale);

    const auto matrix = sweep::fig4Matrix(scale);
    sweep::SweepOptions options;
    options.jobs = jobs;
    options.captureStats = false;

    const auto results = sweep::SweepRunner(options).run(
        matrix.jobs,
        [](const sweep::SweepResult &r, std::size_t done,
           std::size_t total) {
            std::fprintf(stderr, "  [%zu/%zu] done: %s\n", done,
                         total, r.id.c_str());
        });

    std::map<std::string, ExperimentResult> byId;
    for (const auto &r : results) {
        if (!r.ok) {
            std::fprintf(stderr, "job %s failed: %s\n", r.id.c_str(),
                         r.error.c_str());
            return 1;
        }
        byId[r.id] = r.metrics;
    }

    const auto &base = byId.at("fig4/em3d/no-mtlb");
    auto cell = [&](unsigned entries,
                    unsigned assoc) -> const ExperimentResult & {
        return byId.at("fig4/em3d/m" + std::to_string(entries) + "x" +
                       std::to_string(assoc));
    };

    std::printf("--- (A) total runtime normalized to the no-MTLB "
                "128-entry-TLB system\n");
    std::printf("          no-MTLB baseline: %llu cycles (1.000)\n",
                static_cast<unsigned long long>(base.totalCycles));
    std::printf("%-10s", "entries");
    for (unsigned a : assocs)
        std::printf("  %6u-way", a);
    std::printf("\n");
    for (unsigned s : sizes) {
        std::printf("%-10u", s);
        for (unsigned a : assocs) {
            std::printf("  %10.3f",
                        static_cast<double>(cell(s, a).totalCycles) /
                            static_cast<double>(base.totalCycles));
        }
        std::printf("\n");
    }

    std::printf("\n--- (B) average CPU cycles per cache fill "
                "(no-MTLB baseline: %.2f)\n", base.avgFillCycles);
    std::printf("%-10s", "entries");
    for (unsigned a : assocs)
        std::printf("  %6u-way", a);
    std::printf("\n");
    for (unsigned s : sizes) {
        std::printf("%-10u", s);
        for (unsigned a : assocs)
            std::printf("  %10.2f", cell(s, a).avgFillCycles);
        std::printf("\n");
    }

    std::printf("\n--- (B') added fill delay vs the standard system "
                "(paper: 10 down to 1.5 cycles)\n");
    std::printf("%-10s", "entries");
    for (unsigned a : assocs)
        std::printf("  %6u-way", a);
    std::printf("\n");
    for (unsigned s : sizes) {
        std::printf("%-10u", s);
        for (unsigned a : assocs) {
            std::printf("  %10.2f",
                        cell(s, a).avgFillCycles - base.avgFillCycles);
        }
        std::printf("\n");
    }

    std::printf("\n--- MTLB hit rates (paper: 91%% for the default "
                "128-entry 2-way)\n");
    std::printf("%-10s", "entries");
    for (unsigned a : assocs)
        std::printf("  %6u-way", a);
    std::printf("\n");
    for (unsigned s : sizes) {
        std::printf("%-10u", s);
        for (unsigned a : assocs)
            std::printf("  %9.1f%%", 100.0 * cell(s, a).mtlbHitRate);
        std::printf("\n");
    }

    // §3.5 claims.
    const double default_ratio =
        static_cast<double>(cell(128, 2).totalCycles) /
        static_cast<double>(base.totalCycles);
    const double bigger_ratio =
        static_cast<double>(cell(256, 2).totalCycles) /
        static_cast<double>(base.totalCycles);
    const double wider_ratio =
        static_cast<double>(cell(128, 4).totalCycles) /
        static_cast<double>(base.totalCycles);
    std::printf("\n=== §3.5 claims check\n");
    std::printf("default 128/2-way vs no-MTLB (paper: ~2%% slower): "
                "%+.1f%%\n", 100.0 * (default_ratio - 1.0));
    std::printf("doubling size (256/2-way) erases it: %+.1f%%\n",
                100.0 * (bigger_ratio - 1.0));
    std::printf("doubling assoc (128/4-way) erases it: %+.1f%%\n",
                100.0 * (wider_ratio - 1.0));
    std::printf("em3d cache hit rate (paper: ~84%%): %.1f%%\n",
                100.0 * base.cacheHitRate);
    return 0;
}
