/**
 * @file
 * §6 extension ablation: no-copy page recoloring via shadow memory.
 *
 * The paper's future-work list includes using shadow memory to
 * implement no-copy page recoloring [Bershad et al.]: when two hot
 * pages collide in a physically indexed direct-mapped cache, remap
 * one of them to a shadow address of a different color instead of
 * copying it to a different frame.
 *
 * This harness builds a working set of hot page pairs that collide
 * by construction and compares three policies:
 *
 *   none     - live with the conflict misses;
 *   copy     - conventional recoloring: copy each offender to a
 *              frame of a free color (~11 K cycles per page, §3.3);
 *   shadow   - remap each offender to a recolored shadow page
 *              (~1.5 K cycles, no copy).
 *
 * Usage: recolor_ablation
 */

#include <cstdio>
#include <vector>

#include "sim/system.hh"

using namespace mtlbsim;

namespace
{

constexpr Addr MB = 1024 * 1024;
constexpr Addr dataBase = 0x10000000;

SystemConfig
machine()
{
    SystemConfig c;
    c.installedBytes = 64 * MB;
    c.cache.virtuallyIndexed = false;
    // Coarse-grained invariant auditing: cheap insurance that the
    // ablation exercises only consistent translation state.
    c.check.enabled = true;
    c.check.interval = 5'000'000;
    return c;
}

/** Find @p pairs (a, b) of virtual pages whose frames share a
 *  color. Touches pages to materialise them. */
std::vector<std::pair<Addr, Addr>>
findConflicts(System &sys, unsigned pairs)
{
    std::vector<std::pair<Addr, Addr>> result;
    std::vector<Addr> by_color[128];
    for (Addr off = 0; off < 24 * MB && result.size() < pairs;
         off += basePageSize) {
        const Addr va = dataBase + off;
        sys.cpu().load(va);
        const unsigned color = sys.kernel().colorOf(va);
        by_color[color].push_back(va);
        if (by_color[color].size() == 2) {
            result.emplace_back(by_color[color][0],
                                by_color[color][1]);
            by_color[color].clear();
        }
    }
    fatalIf(result.size() < pairs, "not enough conflicts found");
    return result;
}

/** Ping-pong between the pages of every pair. */
Cycles
hammer(System &sys, const std::vector<std::pair<Addr, Addr>> &pairs,
       unsigned reps)
{
    const Cycles start = sys.cpu().now();
    for (unsigned r = 0; r < reps; ++r) {
        for (const auto &[a, b] : pairs) {
            for (unsigned line = 0; line < 4; ++line) {
                sys.cpu().execute(3);
                sys.cpu().load(a + line * 32);
                sys.cpu().execute(3);
                sys.cpu().load(b + line * 32);
            }
        }
    }
    return sys.cpu().now() - start;
}

/** Model of conventional copy-based recoloring: pay a warm page
 *  copy (§3.3: ~11,400 cycles) per recolored page. The copy itself
 *  is simulated with the same word loop sec33 measures. */
Cycles
copyRecolor(System &sys, Addr va)
{
    // Copy to a scratch page, then back-map: in a real kernel the
    // page would move frames; the dominant cost is the copy loop.
    const Addr scratch = dataBase + 30 * MB;
    for (Addr off = 0; off < basePageSize; off += 4) {
        sys.cpu().execute(9);
        sys.cpu().load(va + off);
        sys.cpu().store(scratch + off);
    }
    return 0;
}

} // namespace

int
main()
{
    setInformEnabled(false);

    constexpr unsigned num_pairs = 16;
    constexpr unsigned reps = 2000;

    std::printf("=== §6 ablation: no-copy page recoloring "
                "(physically indexed 512 KB cache,\n    %u colliding "
                "page pairs, %u hammer rounds)\n\n", num_pairs, reps);
    std::printf("%-10s %16s %16s %14s\n", "policy", "fix cost (cyc)",
                "hammer cycles", "cache misses");

    // Policy: none.
    {
        System sys(machine());
        sys.kernel().addressSpace().addRegion("data", dataBase,
                                              32 * MB, {});
        auto pairs = findConflicts(sys, num_pairs);
        const auto m0 = sys.cache().misses();
        const Cycles t = hammer(sys, pairs, reps);
        std::printf("%-10s %16s %16llu %14llu\n", "none", "-",
                    static_cast<unsigned long long>(t),
                    static_cast<unsigned long long>(
                        sys.cache().misses() - m0));
    }

    // Policy: copy-based recoloring.
    {
        System sys(machine());
        sys.kernel().addressSpace().addRegion("data", dataBase,
                                              32 * MB, {});
        auto pairs = findConflicts(sys, num_pairs);
        const Cycles fix_start = sys.cpu().now();
        for (auto &[a, b] : pairs) {
            copyRecolor(sys, b);
            // After the copy the data lives in a new frame of a
            // fresh color; model the new placement by recoloring the
            // mapping (cheap part) — the copy loop above already
            // charged the expensive part.
            sys.cpu().recolorPage(
                b, (sys.kernel().colorOf(a) + 64) % 128);
        }
        const Cycles fix = sys.cpu().now() - fix_start;
        const auto m0 = sys.cache().misses();
        const Cycles t = hammer(sys, pairs, reps);
        std::printf("%-10s %16llu %16llu %14llu\n", "copy",
                    static_cast<unsigned long long>(fix),
                    static_cast<unsigned long long>(t),
                    static_cast<unsigned long long>(
                        sys.cache().misses() - m0));
    }

    // Policy: shadow recoloring (no copy).
    {
        System sys(machine());
        sys.kernel().addressSpace().addRegion("data", dataBase,
                                              32 * MB, {});
        auto pairs = findConflicts(sys, num_pairs);
        const Cycles fix_start = sys.cpu().now();
        for (auto &[a, b] : pairs) {
            sys.cpu().recolorPage(
                b, (sys.kernel().colorOf(a) + 64) % 128);
        }
        const Cycles fix = sys.cpu().now() - fix_start;
        const auto m0 = sys.cache().misses();
        const Cycles t = hammer(sys, pairs, reps);
        std::printf("%-10s %16llu %16llu %14llu\n", "shadow",
                    static_cast<unsigned long long>(fix),
                    static_cast<unsigned long long>(t),
                    static_cast<unsigned long long>(
                        sys.cache().misses() - m0));
    }

    std::printf("\nshadow recoloring removes the conflict for a "
                "fraction of the copy cost\n(and the data never "
                "moves, so no copy-back is ever needed either).\n");
    return 0;
}
