/**
 * @file
 * §1/§6 projection: "likely to be even more effective on
 * applications with significantly larger working sets and worse
 * spatial locality, such as ... large databases and other
 * commercially important applications."
 *
 * The paper makes this claim but cannot evaluate it (its SPEC-class
 * benchmarks top out near 20 MB). This harness sweeps an OLTP-style
 * database workload's footprint and measures how the no-MTLB miss
 * time — and therefore the MTLB's benefit — grows with scale, on the
 * paper's 128-entry-TLB machine.
 *
 * Usage: commercial_projection
 */

#include <cstdio>

#include "workloads/experiment.hh"

using namespace mtlbsim;

int
main()
{
    setInformEnabled(false);

    std::printf("=== §1/§6 projection: MTLB benefit vs database "
                "footprint (128-entry CPU TLB)\n\n");
    std::printf("%-10s %14s %9s %14s %9s %9s\n", "scale",
                "conv (cyc)", "miss%", "MTLB (cyc)", "miss%",
                "speedup");

    for (const double scale : {0.125, 0.25, 0.5, 1.0}) {
        SystemConfig base_config = paperConfig(128, false);
        SystemConfig mtlb_config = paperConfig(128, true);
        const auto base = runExperiment("oltp", scale, base_config);
        const auto with = runExperiment("oltp", scale, mtlb_config);
        std::fprintf(stderr, "  done: scale %.3f\n", scale);
        std::printf("%-10.3f %14llu %8.1f%% %14llu %8.2f%% %8.3fx\n",
                    scale,
                    static_cast<unsigned long long>(base.totalCycles),
                    100.0 * base.tlbMissFraction,
                    static_cast<unsigned long long>(with.totalCycles),
                    100.0 * with.tlbMissFraction,
                    static_cast<double>(base.totalCycles) /
                        static_cast<double>(with.totalCycles));
    }

    std::printf("\nThe conventional system's miss time — and the "
                "MTLB's speedup — grow with the\ndatabase, exactly "
                "the trend the paper projects for commercial "
                "workloads.\n");
    return 0;
}
