/**
 * @file
 * Figure 2 reproduction: static partitioning of a 512 MB shadow
 * ("pseudo-physical") address space into superpage buckets — plus
 * the bucket-vs-buddy ablation the paper's §2.4 suggests.
 *
 * Usage: fig2_partition
 */

#include <cstdio>
#include <vector>

#include "base/random.hh"
#include "os/shadow_alloc.hh"

using namespace mtlbsim;

namespace
{

constexpr Addr MB = 1024 * 1024;
const AddrRange shadow512{0x80000000, 512 * MB};

const char *
sizeName(unsigned c)
{
    static const char *names[] = {"4KB",    "16KB",  "64KB",
                                  "256KB",  "1024KB", "4096KB",
                                  "16384KB", "64MB"};
    return names[c];
}

/**
 * Drive an allocator with a remap-like request mix until the first
 * failure; returns bytes successfully delivered.
 */
Addr
deliveredUntilFailure(ShadowAllocator &alloc, std::uint64_t seed)
{
    // Request mix biased towards large superpages, as maximally
    // sized superpage creation (§2.4) produces.
    Random rng(seed);
    Addr delivered = 0;
    while (true) {
        unsigned c;
        const auto roll = rng.below(100);
        if (roll < 40)
            c = 6;
        else if (roll < 60)
            c = 5;
        else if (roll < 75)
            c = 4;
        else if (roll < 85)
            c = 3;
        else if (roll < 95)
            c = 2;
        else
            c = 1;
        const auto base = alloc.allocate(c);
        if (!base)
            return delivered;
        delivered += pageSizeForClass(c);
    }
}

} // namespace

int
main()
{
    setInformEnabled(false);

    std::printf("=== Figure 2: partitioning of the 512 MB "
                "pseudo-physical address space\n\n");
    std::printf("%-12s %8s %16s\n", "Superpage", "Count",
                "Address Space");
    std::printf("%-12s %8s %16s\n", "Size", "", "Extent");

    const auto partition = BucketShadowAllocator::defaultPartition();
    BucketShadowAllocator alloc(shadow512, partition);

    Addr total = 0;
    for (unsigned c = minShadowSizeClass; c <= maxShadowSizeClass;
         ++c) {
        const Addr extent = partition[c] * pageSizeForClass(c);
        total += extent;
        std::printf("%-12s %8llu %14lluMB\n", sizeName(c),
                    static_cast<unsigned long long>(partition[c]),
                    static_cast<unsigned long long>(extent / MB));
        // The allocator must expose exactly the printed counts.
        if (alloc.available(c) != partition[c]) {
            std::printf("  MISMATCH: allocator has %llu\n",
                        static_cast<unsigned long long>(
                            alloc.available(c)));
            return 1;
        }
    }
    std::printf("%-12s %8s %14lluMB\n", "total", "",
                static_cast<unsigned long long>(total / MB));

    std::printf("\n=== ablation: bucket (paper) vs buddy (§2.4 "
                "future work) under a maximal-superpage request "
                "mix\n\n");
    std::printf("%-8s %20s %20s\n", "seed", "bucket delivered",
                "buddy delivered");
    double bucket_sum = 0, buddy_sum = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        BucketShadowAllocator bucket(shadow512, partition);
        BuddyShadowAllocator buddy(shadow512);
        const Addr b1 = deliveredUntilFailure(bucket, seed);
        const Addr b2 = deliveredUntilFailure(buddy, seed);
        bucket_sum += static_cast<double>(b1);
        buddy_sum += static_cast<double>(b2);
        std::printf("%-8llu %18lluMB %18lluMB\n",
                    static_cast<unsigned long long>(seed),
                    static_cast<unsigned long long>(b1 / MB),
                    static_cast<unsigned long long>(b2 / MB));
    }
    std::printf("\nbuddy delivers %.1f%% of the region before first "
                "failure vs %.1f%% for buckets\n",
                100.0 * buddy_sum / 5 / (512 * MB),
                100.0 * bucket_sum / 5 / (512 * MB));
    std::printf("(the buddy allocator cannot strand capacity in a "
                "depleted size class)\n");
    return 0;
}
