/**
 * @file
 * §4 ablation: all-shadow operation.
 *
 * On machines whose entire physical address range is populated with
 * DRAM there are no free addresses for shadow regions. The paper's
 * proposed escape: route *all* virtual accesses through shadow
 * memory and let the kernel use real addresses privately. The cost
 * is a heavier MTLB load; §4 predicts that such a configuration
 * "might need to expand its size and/or associativity" to keep
 * programs that do not use superpages fast.
 *
 * This harness runs a TLB-friendly workload (which gains nothing
 * from superpages) in mixed mode and in all-shadow mode across MTLB
 * sizes, showing the §4 overhead and how a bigger MTLB recovers it.
 *
 * Usage: allshadow_ablation
 */

#include <cstdio>

#include "base/random.hh"
#include "sim/system.hh"

using namespace mtlbsim;

namespace
{

constexpr Addr MB = 1024 * 1024;

Cycles
run(bool all_shadow, unsigned mtlb_entries)
{
    SystemConfig config;
    config.installedBytes = 64 * MB;
    config.kernel.allShadowMode = all_shadow;
    config.mtlb.numEntries = mtlb_entries;
    config.mtlb.associativity = 2;
    // Coarse-grained invariant auditing: cheap insurance that the
    // ablation exercises only consistent translation state.
    config.check.enabled = true;
    config.check.interval = 5'000'000;
    System sys(config);

    // A program that gains nothing from superpages (its TLB
    // behaviour is identical either way): sequential sweeps over
    // 2 MB, plus pointer-chasing sprinkles across 8 MB that exercise
    // the MTLB's capacity in all-shadow mode.
    const Addr base = 0x10000000;
    const Addr span = 2 * MB;
    const Addr far_span = 8 * MB;
    sys.kernel().addressSpace().addRegion("data", base, far_span, {});

    Random rng(9);
    for (unsigned sweep = 0; sweep < 8; ++sweep) {
        for (Addr off = 0; off < span; off += 32) {
            sys.cpu().execute(3);
            if (rng.chance(1, 16))
                sys.cpu().store(base + off);
            else
                sys.cpu().load(base + off);
            if (rng.chance(1, 8)) {
                sys.cpu().execute(2);
                sys.cpu().load(base +
                               (rng.below(far_span) & ~Addr{7}));
            }
        }
    }
    return sys.totalCycles();
}

} // namespace

int
main()
{
    setInformEnabled(false);

    std::printf("=== §4 ablation: all-shadow operation vs mixed "
                "mode, across MTLB sizes\n    (TLB-friendly 2 MB "
                "sequential workload; 2-way MTLB)\n\n");
    std::printf("%-10s %16s %16s %12s\n", "MTLB", "mixed (cyc)",
                "all-shadow (cyc)", "overhead");

    for (unsigned entries : {64u, 128u, 256u, 512u, 1024u}) {
        const Cycles mixed = run(false, entries);
        const Cycles shadow = run(true, entries);
        std::printf("%-10u %16llu %16llu %+11.1f%%\n", entries,
                    static_cast<unsigned long long>(mixed),
                    static_cast<unsigned long long>(shadow),
                    100.0 * (static_cast<double>(shadow) /
                                 static_cast<double>(mixed) -
                             1.0));
    }

    std::printf("\nAll-shadow mode pays the MTLB's per-operation "
                "check and fill costs on every\naccess; growing the "
                "MTLB recovers the difference, exactly as §4 "
                "anticipates.\n");
    return 0;
}
