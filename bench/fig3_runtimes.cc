/**
 * @file
 * Figure 3 reproduction: normalized runtimes (and TLB-miss-time
 * fractions) for the five benchmarks, across CPU TLB sizes 64/96/128
 * with and without a 128-entry 2-way MTLB. The base system for
 * normalization is the 96-entry TLB with no MTLB, exactly as in the
 * paper (§3.4).
 *
 * Also evaluates the §3.4 textual claims, including radix at a
 * 256-entry TLB (13.5% miss time in the paper).
 *
 * The design space comes from sweep::fig3Matrix and runs on the
 * parallel SweepRunner; results are identical for any job count.
 *
 * Usage: fig3_runtimes [scale] [jobs]   (default scale 1.0, jobs =
 *                                        hardware concurrency)
 */

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "sweep/matrix.hh"
#include "workloads/experiment.hh"

using namespace mtlbsim;

namespace
{

struct ConfigPoint
{
    unsigned tlb;
    bool mtlb;
};

const std::vector<ConfigPoint> fig3Points = {
    {64, false}, {96, false}, {128, false},
    {64, true},  {96, true},  {128, true},
};

std::string
pointKey(const ConfigPoint &p)
{
    return std::to_string(p.tlb) + (p.mtlb ? "+M" : "");
}

std::string
jobId(const std::string &workload, unsigned tlb, bool mtlb)
{
    return "fig3/" + workload + "/tlb" + std::to_string(tlb) +
           (mtlb ? "+mtlb" : "");
}

void
printHeader()
{
    std::printf("%-12s", "");
    for (const auto &p : fig3Points) {
        std::printf("  %5u%-6s", p.tlb, p.mtlb ? "+MTLB" : "");
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
    const unsigned jobs =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 0;
    setInformEnabled(false);

    std::printf("=== Figure 3: normalized runtimes, 5 programs x "
                "{64,96,128}-entry TLB x {no MTLB, 128-entry 2-way "
                "MTLB}\n");
    std::printf("=== base system = 96-entry TLB, no MTLB "
                "(scale %.2f)\n\n", scale);

    const auto matrix = sweep::fig3Matrix(scale);
    sweep::SweepOptions options;
    options.jobs = jobs;
    options.captureStats = false;

    const auto results = sweep::SweepRunner(options).run(
        matrix.jobs,
        [](const sweep::SweepResult &r, std::size_t done,
           std::size_t total) {
            std::fprintf(stderr, "  [%zu/%zu] done: %s%s%s\n", done,
                         total, r.id.c_str(),
                         r.ok ? "" : " FAILED: ",
                         r.ok ? "" : r.error.c_str());
        });

    std::map<std::string, ExperimentResult> byId;
    for (const auto &r : results) {
        if (!r.ok) {
            std::fprintf(stderr, "job %s failed: %s\n", r.id.c_str(),
                         r.error.c_str());
            return 1;
        }
        byId[r.id] = r.metrics;
    }
    auto at = [&](const std::string &workload, unsigned tlb,
                  bool mtlb) -> const ExperimentResult & {
        return byId.at(jobId(workload, tlb, mtlb));
    };

    std::printf("--- normalized total runtime (lower is better)\n");
    printHeader();
    for (const auto &name : allWorkloadNames()) {
        const double base =
            static_cast<double>(at(name, 96, false).totalCycles);
        std::printf("%-12s", name.c_str());
        for (const auto &p : fig3Points) {
            std::printf("  %11.3f",
                        static_cast<double>(
                            at(name, p.tlb, p.mtlb).totalCycles) /
                            base);
        }
        std::printf("\n");
    }

    std::printf("\n--- TLB miss handling, %% of total runtime "
                "(Fig 3's shaded fraction)\n");
    printHeader();
    for (const auto &name : allWorkloadNames()) {
        std::printf("%-12s", name.c_str());
        for (const auto &p : fig3Points) {
            std::printf("  %10.1f%%",
                        100.0 *
                            at(name, p.tlb, p.mtlb).tlbMissFraction);
        }
        std::printf("\n");
    }

    // §3.4 textual claims.
    std::printf("\n=== §3.4 claims check\n");

    unsigned over20 = 0;
    for (const auto &name : allWorkloadNames()) {
        if (at(name, 64, false).tlbMissFraction > 0.20)
            ++over20;
    }
    std::printf("programs with >20%% miss time at 64 entries "
                "(paper: 4 of 5): %u of 5\n", over20);

    const auto &radix256 = byId.at("fig3/radix/tlb256");
    std::printf("radix miss time at 256 entries (paper: 13.5%%): "
                "%.1f%%\n", 100.0 * radix256.tlbMissFraction);

    double worst_mtlb = 0;
    std::string worst_name;
    for (const auto &name : allWorkloadNames()) {
        for (const auto &p : fig3Points) {
            if (!p.mtlb)
                continue;
            const double frac = at(name, p.tlb, true).tlbMissFraction;
            if (frac > worst_mtlb) {
                worst_mtlb = frac;
                worst_name = name + " (" + pointKey(p) + ")";
            }
        }
    }
    std::printf("worst MTLB-config miss time (paper: <5%%, em3d "
                "worst): %.1f%% (%s)\n", 100.0 * worst_mtlb,
                worst_name.c_str());

    std::printf("\n--- MTLB speedup at each TLB size "
                "(paper: 5-20%% for miss-heavy programs)\n");
    std::printf("%-12s  %8s  %8s  %8s\n", "", "64", "96", "128");
    for (const auto &name : allWorkloadNames()) {
        std::printf("%-12s", name.c_str());
        for (unsigned tlb : {64u, 96u, 128u}) {
            const double speedup =
                static_cast<double>(at(name, tlb, false).totalCycles) /
                static_cast<double>(at(name, tlb, true).totalCycles);
            std::printf("  %7.3fx", speedup);
        }
        std::printf("\n");
    }

    std::printf("\n--- headline equivalence: 64-entry TLB + MTLB vs "
                "128-entry TLB alone\n");
    for (const auto &name : allWorkloadNames()) {
        const double ratio =
            static_cast<double>(at(name, 64, true).totalCycles) /
            static_cast<double>(at(name, 128, false).totalCycles);
        std::printf("%-12s  %.3f  (%s)\n", name.c_str(), ratio,
                    ratio <= 1.02 ? "64+MTLB wins or ties"
                                  : "128-entry TLB wins");
    }
    return 0;
}
