/**
 * @file
 * Simulator-speed benchmark: simulated accesses per host second.
 *
 * Measures host throughput — NOT simulated time — of the full Fig 3
 * design space in three modes: "baseline" (every host fast path
 * off), "fastpath" (the L0 translation cache on), and "batch" (L0
 * plus the batched same-page access engine). All modes must produce
 * identical simulated cycle and access counts; the harness fatals on
 * any divergence, making every speed run double as a
 * behaviour-identity check of the whole fast-mode stack.
 *
 * Emits BENCH_simspeed.json as an append-only trajectory: each run
 * APPENDS one entry to the "trajectory" array of an existing report
 * (a legacy single-run report is converted into the first entry), so
 * the committed file accumulates one data point per PR and the trend
 * is diffable in review.
 *
 * Usage: simspeed [--quick] [--scale S] [--reps N] [--l0 N]
 *                 [--batch-window N] [--label TEXT] [--out FILE]
 *   --quick          tiny datasets (scale 0.02) for CI smoke runs
 *   --scale S        workload scale factor (default 0.1)
 *   --reps N         repetitions per mode; min and median wall
 *                    times are reported (default 1)
 *   --l0 N           fast-path entries for the fastpath and batch
 *                    modes (default 512)
 *   --batch-window N cpu.batch_window for the batch mode
 *                    (default 4096)
 *   --label T        free-form tag recorded in the trajectory entry
 *                    (e.g. a PR number or commit subject)
 *   --out FILE       read/append the JSON report here (default
 *                    BENCH_simspeed.json in the working directory)
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "stats/json.hh"
#include "sweep/matrix.hh"
#include "workloads/workload.hh"

using namespace mtlbsim;

namespace
{

/** One mode's host-speed knobs. */
struct ModeSpec
{
    const char *name;
    unsigned l0Entries;
    unsigned batchWindow;   ///< 0 = batching off
};

struct ModeResult
{
    double seconds = 0.0;           ///< host seconds, fastest rep
    double medianSeconds = 0.0;     ///< median over the reps
    std::uint64_t accesses = 0;     ///< simulated data accesses
    std::uint64_t simCycles = 0;    ///< total simulated cycles
    std::uint64_t l0Hits = 0;
    std::uint64_t l0Misses = 0;

    double
    accessesPerSec() const
    {
        return seconds > 0 ? static_cast<double>(accesses) / seconds
                           : 0.0;
    }

    double
    l0HitRate() const
    {
        const std::uint64_t total = l0Hits + l0Misses;
        return total ? static_cast<double>(l0Hits) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/** Run every job of @p matrix once under @p mode, timing the whole
 *  pass on the host clock. */
ModeResult
runMatrixOnce(const sweep::SweepMatrix &matrix, const ModeSpec &mode)
{
    ModeResult r;
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto &job : matrix.jobs) {
        SystemConfig config = job.config;
        config.cpu.l0Entries = mode.l0Entries;
        config.cpu.batchEnable = mode.batchWindow != 0;
        config.cpu.batchWindow = mode.batchWindow;
        System sys(config);
        auto workload = makeWorkload(job.workload, job.scale, job.seed);
        workload->setup(sys);
        workload->run(sys);
        r.accesses += sys.cpu().dataAccesses();
        r.simCycles += sys.cpu().now();
        r.l0Hits += sys.cpu().l0().hitCount();
        r.l0Misses += sys.cpu().l0().missCount();
    }
    const auto t1 = std::chrono::steady_clock::now();
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    return r;
}

/** Min + median wall time over @p reps; simulated counts must
 *  repeat exactly across repetitions. */
ModeResult
runMode(const sweep::SweepMatrix &matrix, const ModeSpec &mode,
        unsigned reps)
{
    ModeResult best;
    std::vector<double> times;
    times.reserve(reps);
    for (unsigned i = 0; i < reps; ++i) {
        ModeResult r = runMatrixOnce(matrix, mode);
        times.push_back(r.seconds);
        if (i == 0) {
            best = r;
            continue;
        }
        fatalIf(r.simCycles != best.simCycles ||
                    r.accesses != best.accesses,
                "non-deterministic simulation across repetitions (",
                mode.name, " mode)");
        if (r.seconds < best.seconds) {
            best.seconds = r.seconds;
            best.l0Hits = r.l0Hits;
            best.l0Misses = r.l0Misses;
        }
    }
    std::sort(times.begin(), times.end());
    best.medianSeconds = times[times.size() / 2];
    return best;
}

json::Value
modeToJson(const ModeResult &r, const ModeSpec &mode)
{
    json::Value v = json::Value::object();
    v.set("l0_entries", mode.l0Entries);
    if (mode.batchWindow != 0)
        v.set("batch_window", mode.batchWindow);
    v.set("host_seconds", r.seconds);
    v.set("host_seconds_median", r.medianSeconds);
    v.set("sim_accesses", r.accesses);
    v.set("sim_cycles", r.simCycles);
    v.set("accesses_per_host_sec", r.accessesPerSec());
    if (mode.l0Entries != 0) {
        v.set("l0_hits", r.l0Hits);
        v.set("l0_misses", r.l0Misses);
        v.set("l0_hit_rate", r.l0HitRate());
    }
    return v;
}

/**
 * Load the trajectory from an existing report at @p path. Returns an
 * empty array when the file does not exist. A legacy single-run
 * report (top-level "baseline" key, no "trajectory") becomes the
 * first entry so no measurement history is ever dropped.
 */
json::Value
loadTrajectory(const std::string &path)
{
    json::Value traj = json::Value::array();
    std::ifstream is(path);
    if (!is)
        return traj;
    const json::Value prev = json::Value::parse(is);
    if (!prev.isObject())
        return traj;
    if (const json::Value *t = prev.find("trajectory");
        t && t->isArray()) {
        for (const auto &e : t->items())
            traj.push(e);
    } else if (prev.find("baseline")) {
        json::Value legacy = json::Value::object();
        for (const auto &[key, value] : prev.members()) {
            if (key != "bench")
                legacy.set(key, value);
        }
        traj.push(legacy);
    }
    return traj;
}

void
printModeRow(const char *name, const ModeResult &r, bool has_l0)
{
    std::printf("%-22s  %9.3f  %9.3f  %16.0f  ", name, r.seconds,
                r.medianSeconds, r.accessesPerSec());
    if (has_l0)
        std::printf("%9.1f%%\n", 100.0 * r.l0HitRate());
    else
        std::printf("%10s\n", "-");
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = 0.1;
    unsigned reps = 1;
    unsigned l0_entries = 512;
    unsigned batch_window = 4096;
    std::string label;
    std::string out = "BENCH_simspeed.json";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            fatalIf(i + 1 >= argc, "missing value after ", arg);
            return argv[++i];
        };
        if (arg == "--quick")
            scale = 0.02;
        else if (arg == "--scale")
            scale = std::atof(next());
        else if (arg == "--reps")
            reps = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--l0")
            l0_entries = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--batch-window")
            batch_window = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--label")
            label = next();
        else if (arg == "--out")
            out = next();
        else
            fatal("unknown argument: ", arg);
    }
    fatalIf(reps == 0, "--reps must be at least 1");
    fatalIf(l0_entries == 0, "--l0 must be nonzero (the baseline "
            "mode already measures the disabled configuration)");
    fatalIf(batch_window == 0, "--batch-window must be nonzero (the "
            "fastpath mode already measures batching off)");
    setInformEnabled(false);

    std::printf("=== simspeed: host throughput over the Fig 3 matrix "
                "(scale %.3f, %u rep%s)\n\n", scale, reps,
                reps == 1 ? "" : "s");

    const auto matrix = sweep::fig3Matrix(scale);

    const ModeSpec base_spec{"baseline", 0, 0};
    const ModeSpec fast_spec{"fastpath", l0_entries, 0};
    const ModeSpec batch_spec{"batch", l0_entries, batch_window};

    const ModeResult base = runMode(matrix, base_spec, reps);
    const ModeResult fast = runMode(matrix, fast_spec, reps);
    const ModeResult batch = runMode(matrix, batch_spec, reps);

    // The fast modes must not change simulated behaviour; catching a
    // divergence here turns every speed run into a regression test.
    // The cycle-divergence fatal stays armed in batch mode.
    fatalIf(fast.simCycles != base.simCycles ||
                fast.accesses != base.accesses,
            "L0 fast path changed simulated behaviour: baseline ",
            base.simCycles, " cycles / ", base.accesses,
            " accesses, fastpath ", fast.simCycles, " cycles / ",
            fast.accesses, " accesses");
    fatalIf(batch.simCycles != base.simCycles ||
                batch.accesses != base.accesses,
            "batch engine changed simulated behaviour: baseline ",
            base.simCycles, " cycles / ", base.accesses,
            " accesses, batch ", batch.simCycles, " cycles / ",
            batch.accesses, " accesses");

    const double speedup =
        fast.seconds > 0 ? base.seconds / fast.seconds : 0.0;
    const double batch_speedup =
        batch.seconds > 0 ? base.seconds / batch.seconds : 0.0;
    const double batch_vs_fast =
        batch.seconds > 0 ? fast.seconds / batch.seconds : 0.0;

    std::printf("%-22s  %9s  %9s  %16s  %10s\n", "mode", "min sec",
                "med sec", "accesses/sec", "L0 hit%");
    printModeRow("baseline (l0=0)", base, false);
    printModeRow(("fastpath (l0=" + std::to_string(l0_entries) + ")")
                     .c_str(),
                 fast, true);
    printModeRow(("batch (window=" + std::to_string(batch_window) +
                  ")")
                     .c_str(),
                 batch, true);
    std::printf("\nspeedup: fastpath %.2fx, batch %.2fx "
                "(%.2fx over fastpath)\n"
                "%llu simulated accesses, %llu simulated cycles, "
                "bit-identical across all modes\n",
                speedup, batch_speedup, batch_vs_fast,
                static_cast<unsigned long long>(base.accesses),
                static_cast<unsigned long long>(base.simCycles));

    json::Value entry = json::Value::object();
    if (!label.empty())
        entry.set("label", label);
    entry.set("matrix", matrix.name);
    entry.set("scale", scale);
    entry.set("reps", reps);
    entry.set("baseline", modeToJson(base, base_spec));
    entry.set("fastpath", modeToJson(fast, fast_spec));
    entry.set("batch", modeToJson(batch, batch_spec));
    entry.set("speedup", speedup);
    entry.set("batch_speedup", batch_speedup);
    entry.set("batch_speedup_vs_fastpath", batch_vs_fast);

    json::Value traj = loadTrajectory(out);
    traj.push(std::move(entry));

    json::Value doc = json::Value::object();
    doc.set("bench", "simspeed");
    doc.set("trajectory", std::move(traj));

    std::ofstream os(out);
    fatalIf(!os, "cannot write ", out);
    doc.dump(os);
    os << "\n";
    std::printf("appended entry %zu to %s\n",
                doc.find("trajectory")->items().size(), out.c_str());
    return 0;
}
