/**
 * @file
 * Simulator-speed benchmark: simulated accesses per host second.
 *
 * Measures host throughput — NOT simulated time — of the full Fig 3
 * design space, with the L0 translation fast path disabled
 * (cpu.l0_entries = 0, "baseline") and enabled ("fastpath"). The two
 * modes must produce identical simulated cycle counts; the harness
 * fatals if they diverge, making every speed run double as a
 * behaviour-identity check.
 *
 * Emits BENCH_simspeed.json as an append-only trajectory: each run
 * APPENDS one entry to the "trajectory" array of an existing report
 * (a legacy single-run report is converted into the first entry), so
 * the committed file accumulates one data point per PR and the trend
 * is diffable in review.
 *
 * Usage: simspeed [--quick] [--scale S] [--reps N] [--l0 N]
 *                 [--label TEXT] [--out FILE]
 *   --quick    tiny datasets (scale 0.02) for CI smoke runs
 *   --scale S  workload scale factor (default 0.1)
 *   --reps N   repetitions per mode; the fastest rep is reported
 *              (default 1)
 *   --l0 N     fast-path entries for the fastpath mode (default 512)
 *   --label T  free-form tag recorded in the trajectory entry
 *              (e.g. a PR number or commit subject)
 *   --out FILE read/append the JSON report here (default
 *              BENCH_simspeed.json in the working directory)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "base/logging.hh"
#include "stats/json.hh"
#include "sweep/matrix.hh"
#include "workloads/workload.hh"

using namespace mtlbsim;

namespace
{

struct ModeResult
{
    double seconds = 0.0;           ///< host seconds, fastest rep
    std::uint64_t accesses = 0;     ///< simulated data accesses
    std::uint64_t simCycles = 0;    ///< total simulated cycles
    std::uint64_t l0Hits = 0;
    std::uint64_t l0Misses = 0;

    double
    accessesPerSec() const
    {
        return seconds > 0 ? static_cast<double>(accesses) / seconds
                           : 0.0;
    }

    double
    l0HitRate() const
    {
        const std::uint64_t total = l0Hits + l0Misses;
        return total ? static_cast<double>(l0Hits) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/** Run every job of @p matrix once with @p l0_entries fast-path
 *  slots, timing the whole pass on the host clock. */
ModeResult
runMatrixOnce(const sweep::SweepMatrix &matrix, unsigned l0_entries)
{
    ModeResult r;
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto &job : matrix.jobs) {
        SystemConfig config = job.config;
        config.cpu.l0Entries = l0_entries;
        System sys(config);
        auto workload = makeWorkload(job.workload, job.scale, job.seed);
        workload->setup(sys);
        workload->run(sys);
        r.accesses += sys.cpu().dataAccesses();
        r.simCycles += sys.cpu().now();
        r.l0Hits += sys.cpu().l0().hitCount();
        r.l0Misses += sys.cpu().l0().missCount();
    }
    const auto t1 = std::chrono::steady_clock::now();
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    return r;
}

/** Best-of-@p reps wall time; simulated counts must repeat exactly. */
ModeResult
runMode(const sweep::SweepMatrix &matrix, unsigned l0_entries,
        unsigned reps)
{
    ModeResult best;
    for (unsigned i = 0; i < reps; ++i) {
        ModeResult r = runMatrixOnce(matrix, l0_entries);
        if (i == 0) {
            best = r;
            continue;
        }
        fatalIf(r.simCycles != best.simCycles ||
                    r.accesses != best.accesses,
                "non-deterministic simulation across repetitions");
        if (r.seconds < best.seconds) {
            best.seconds = r.seconds;
            best.l0Hits = r.l0Hits;
            best.l0Misses = r.l0Misses;
        }
    }
    return best;
}

json::Value
modeToJson(const ModeResult &r, unsigned l0_entries)
{
    json::Value v = json::Value::object();
    v.set("l0_entries", l0_entries);
    v.set("host_seconds", r.seconds);
    v.set("sim_accesses", r.accesses);
    v.set("sim_cycles", r.simCycles);
    v.set("accesses_per_host_sec", r.accessesPerSec());
    if (l0_entries != 0) {
        v.set("l0_hits", r.l0Hits);
        v.set("l0_misses", r.l0Misses);
        v.set("l0_hit_rate", r.l0HitRate());
    }
    return v;
}

/**
 * Load the trajectory from an existing report at @p path. Returns an
 * empty array when the file does not exist. A legacy single-run
 * report (top-level "baseline" key, no "trajectory") becomes the
 * first entry so no measurement history is ever dropped.
 */
json::Value
loadTrajectory(const std::string &path)
{
    json::Value traj = json::Value::array();
    std::ifstream is(path);
    if (!is)
        return traj;
    const json::Value prev = json::Value::parse(is);
    if (!prev.isObject())
        return traj;
    if (const json::Value *t = prev.find("trajectory");
        t && t->isArray()) {
        for (const auto &e : t->items())
            traj.push(e);
    } else if (prev.find("baseline")) {
        json::Value legacy = json::Value::object();
        for (const auto &[key, value] : prev.members()) {
            if (key != "bench")
                legacy.set(key, value);
        }
        traj.push(legacy);
    }
    return traj;
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = 0.1;
    unsigned reps = 1;
    unsigned l0_entries = 512;
    std::string label;
    std::string out = "BENCH_simspeed.json";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            fatalIf(i + 1 >= argc, "missing value after ", arg);
            return argv[++i];
        };
        if (arg == "--quick")
            scale = 0.02;
        else if (arg == "--scale")
            scale = std::atof(next());
        else if (arg == "--reps")
            reps = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--l0")
            l0_entries = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--label")
            label = next();
        else if (arg == "--out")
            out = next();
        else
            fatal("unknown argument: ", arg);
    }
    fatalIf(reps == 0, "--reps must be at least 1");
    fatalIf(l0_entries == 0, "--l0 must be nonzero (the baseline "
            "mode already measures the disabled configuration)");
    setInformEnabled(false);

    std::printf("=== simspeed: host throughput over the Fig 3 matrix "
                "(scale %.3f, %u rep%s)\n\n", scale, reps,
                reps == 1 ? "" : "s");

    const auto matrix = sweep::fig3Matrix(scale);

    const ModeResult base = runMode(matrix, 0, reps);
    const ModeResult fast = runMode(matrix, l0_entries, reps);

    // The L0 fast path must not change simulated behaviour; catching
    // a divergence here turns every speed run into a regression test.
    fatalIf(fast.simCycles != base.simCycles ||
                fast.accesses != base.accesses,
            "L0 fast path changed simulated behaviour: baseline ",
            base.simCycles, " cycles / ", base.accesses,
            " accesses, fastpath ", fast.simCycles, " cycles / ",
            fast.accesses, " accesses");

    const double speedup =
        fast.seconds > 0 ? base.seconds / fast.seconds : 0.0;

    std::printf("%-22s  %12s  %16s  %10s\n", "mode", "host sec",
                "accesses/sec", "L0 hit%");
    std::printf("%-22s  %12.3f  %16.0f  %10s\n", "baseline (l0=0)",
                base.seconds, base.accessesPerSec(), "-");
    std::printf("%-22s  %12.3f  %16.0f  %9.1f%%\n",
                ("fastpath (l0=" + std::to_string(l0_entries) + ")")
                    .c_str(),
                fast.seconds, fast.accessesPerSec(),
                100.0 * fast.l0HitRate());
    std::printf("\nspeedup: %.2fx  (%llu simulated accesses, "
                "%llu simulated cycles, bit-identical across modes)\n",
                speedup,
                static_cast<unsigned long long>(base.accesses),
                static_cast<unsigned long long>(base.simCycles));

    json::Value entry = json::Value::object();
    if (!label.empty())
        entry.set("label", label);
    entry.set("matrix", matrix.name);
    entry.set("scale", scale);
    entry.set("reps", reps);
    entry.set("baseline", modeToJson(base, 0));
    entry.set("fastpath", modeToJson(fast, l0_entries));
    entry.set("speedup", speedup);

    json::Value traj = loadTrajectory(out);
    traj.push(std::move(entry));

    json::Value doc = json::Value::object();
    doc.set("bench", "simspeed");
    doc.set("trajectory", std::move(traj));

    std::ofstream os(out);
    fatalIf(!os, "cannot write ", out);
    doc.dump(os);
    os << "\n";
    std::printf("appended entry %zu to %s\n",
                doc.find("trajectory")->items().size(), out.c_str());
    return 0;
}
