/**
 * @file
 * google-benchmark microbenchmarks of the simulator's primitives.
 *
 * These measure *host-side* throughput: they demonstrate the
 * simulator is fast enough for trace-scale experiments and act as
 * regression guards on the hot paths (TLB lookup, MTLB translate,
 * cache access, full CPU access path).
 */

#include <benchmark/benchmark.h>

#include "base/random.hh"
#include "mmc/memsys.hh"
#include "sim/system.hh"

using namespace mtlbsim;

namespace
{
constexpr Addr MB = 1024 * 1024;
}

static void
BM_TlbLookupHit(benchmark::State &state)
{
    stats::StatGroup g("b");
    Tlb tlb(static_cast<unsigned>(state.range(0)), "tlb", g);
    for (unsigned i = 0; i < state.range(0); ++i)
        tlb.insert(Addr{i} << basePageShift, Addr{i} << basePageShift,
                   0, PageProtection{});
    Random rng(1);
    const Addr mask = (state.range(0) - 1);
    for (auto _ : state) {
        const Addr v = (rng.next() & mask) << basePageShift;
        benchmark::DoNotOptimize(
            tlb.lookup(v, AccessType::Read, AccessMode::User));
    }
}
BENCHMARK(BM_TlbLookupHit)->Arg(64)->Arg(128)->Arg(256);

static void
BM_TlbInsertEvict(benchmark::State &state)
{
    stats::StatGroup g("b");
    Tlb tlb(96, "tlb", g);
    Addr v = 0;
    for (auto _ : state) {
        tlb.insert(v << basePageShift, v << basePageShift, 0,
                   PageProtection{});
        ++v;
    }
}
BENCHMARK(BM_TlbInsertEvict);

static void
BM_MtlbTranslate(benchmark::State &state)
{
    stats::StatGroup g("b");
    ShadowTable table(131072, 0x100000);
    MtlbConfig c;
    c.numEntries = 128;
    c.associativity = 2;
    Mtlb mtlb(c, table, g);
    for (Addr i = 0; i < 4096; ++i)
        table.set(i, i + 1);
    Random rng(2);
    const Addr spread = state.range(0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mtlb.translate(rng.below(spread),
                           MtlbAccess::SharedFill));
    }
    state.SetLabel(spread <= 128 ? "mostly hits" : "mostly misses");
}
BENCHMARK(BM_MtlbTranslate)->Arg(64)->Arg(4096);

static void
BM_CacheAccess(benchmark::State &state)
{
    struct NullBackend : MemBackend
    {
        Cycles lineFill(Addr, bool, Cycles) override { return 30; }
        Cycles writeBack(Addr, Cycles) override { return 6; }
    };
    stats::StatGroup g("b");
    NullBackend backend;
    Cache cache(CacheConfig{}, backend, g);
    Random rng(3);
    const Addr spread = static_cast<Addr>(state.range(0)) * MB;
    Cycles now = 0;
    for (auto _ : state) {
        const Addr a = rng.below(spread) & ~cacheLineMask;
        benchmark::DoNotOptimize(cache.access(a, a, false, now++));
    }
    state.SetLabel(spread <= 512 * 1024 / 2 ? "hits" : "mixed");
}
BENCHMARK(BM_CacheAccess)->Arg(8);

static void
BM_FullSystemAccess(benchmark::State &state)
{
    const bool with_mtlb = state.range(0) != 0;
    SystemConfig config;
    config.installedBytes = 128 * MB;
    config.mtlbEnabled = with_mtlb;
    System sys(config);
    const Addr base = 0x10000000;
    const Addr span = 16 * MB;
    sys.kernel().addressSpace().addRegion("data", base, span, {});
    if (with_mtlb)
        sys.cpu().remap(base, span);
    Random rng(4);
    for (auto _ : state) {
        sys.cpu().load(base + (rng.below(span) & ~Addr{7}));
    }
    state.SetLabel(with_mtlb ? "shadow superpages" : "base pages");
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullSystemAccess)->Arg(0)->Arg(1);

static void
BM_HptLookup(benchmark::State &state)
{
    stats::StatGroup g("b");
    System *sys = nullptr;
    (void)sys;
    Hpt hpt(0x200000, 16384);
    for (Addr v = 0; v < 4096; ++v)
        hpt.insert({v << basePageShift, v << basePageShift, 0,
                    PageProtection{}});
    Random rng(5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            hpt.lookup((rng.below(4096)) << basePageShift));
    }
}
BENCHMARK(BM_HptLookup);

static void
BM_ShadowAllocFree(benchmark::State &state)
{
    const AddrRange shadow{0x80000000, 512 * MB};
    BuddyShadowAllocator alloc(shadow);
    Random rng(6);
    for (auto _ : state) {
        const unsigned c =
            minShadowSizeClass +
            static_cast<unsigned>(rng.below(4));
        auto a = alloc.allocate(c);
        if (a)
            alloc.free(*a, c);
    }
}
BENCHMARK(BM_ShadowAllocFree);

static void
BM_DramAccess(benchmark::State &state)
{
    stats::StatGroup g("b");
    Dram dram(DramConfig{}, g);
    Random rng(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            dram.access(rng.below(256 * MB), true));
    }
}
BENCHMARK(BM_DramAccess);

BENCHMARK_MAIN();
