/**
 * @file
 * §3.3 reproduction: superpage initialisation costs.
 *
 * The paper reports:
 *  - explicit cache flushing of remapped pages averages ~1,400 CPU
 *    cycles per 4 KB page;
 *  - copying a 4 KB page whose source is warm in the cache costs
 *    ~11,400 CPU cycles — the cost a copy-based superpage scheme
 *    (conventional contiguity-repairing promotion) would pay instead;
 *  - em3d remaps 1,120 pages of initialised dynamic memory for a
 *    total of 1,659,154 cycles, of which 1,497,067 are cache
 *    flushing and 162,087 everything else.
 *
 * Usage: sec33_init_costs [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "workloads/experiment.hh"

using namespace mtlbsim;

namespace
{

/** Measure the average flush cost of warm, partly dirty pages. */
double
measureFlushCost()
{
    SystemConfig config = paperConfig(96, true);
    System sys(config);
    auto &as = sys.kernel().addressSpace();
    const Addr base = 0x10000000;
    const unsigned pages = 64;
    as.addRegion("data", base, pages * basePageSize, {});

    // Touch the pages with a mix of reads and writes so the cache
    // holds a realistic share of their lines.
    Random rng(7);
    for (unsigned p = 0; p < pages; ++p) {
        for (Addr off = 0; off < basePageSize; off += cacheLineSize) {
            if (rng.chance(1, 3))
                sys.cpu().store(base + p * basePageSize + off);
            else if (rng.chance(1, 2))
                sys.cpu().load(base + p * basePageSize + off);
        }
    }

    // remap() flushes every line of every (pre-existing) page.
    const Cycles before = sys.kernel().remapFlushCycles();
    sys.cpu().remap(base, pages * basePageSize);
    const Cycles flushed = sys.kernel().remapFlushCycles() - before;
    return static_cast<double>(flushed) / pages;
}

/** Measure a kernel word-copy of a 4 KB page with a warm source. */
double
measureWarmCopyCost()
{
    SystemConfig config = paperConfig(96, false);
    System sys(config);
    auto &as = sys.kernel().addressSpace();
    // src and dst must map to different cache indices (the paper's
    // "warm" copy is the friendly case); 256 KB apart in a 512 KB
    // direct-mapped cache keeps them disjoint.
    const Addr src = 0x10000000;
    const Addr dst = 0x10040000;
    as.addRegion("data", src, basePageSize, {});
    as.addRegion("data2", dst, basePageSize, {});

    // Warm the source page.
    for (Addr off = 0; off < basePageSize; off += cacheLineSize)
        sys.cpu().load(src + off);
    // Touch dst once so its translation exists (the copy loop's own
    // first store would otherwise include a page fault).
    sys.cpu().store(dst);

    // Word-by-word copy loop, as the 1998 kernels' bcopy did: one
    // load, one store, and ~9 cycles of loop/address overhead per
    // 4-byte word.
    const Cycles before = sys.cpu().now();
    for (Addr off = 0; off < basePageSize; off += 4) {
        sys.cpu().execute(9);
        sys.cpu().load(src + off);
        sys.cpu().store(dst + off);
    }
    return static_cast<double>(sys.cpu().now() - before);
}

} // namespace

int
main(int argc, char **argv)
{
    const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
    setInformEnabled(false);

    std::printf("=== §3.3: superpage initialisation costs\n\n");

    const double flush = measureFlushCost();
    std::printf("cache flush per 4 KB page (paper ~1,400 cycles): "
                "%.0f cycles\n", flush);

    const double copy = measureWarmCopyCost();
    std::printf("warm 4 KB page copy (paper ~11,400 cycles):      "
                "%.0f cycles\n", copy);
    std::printf("flush/copy advantage of remapping over copying:  "
                "%.1fx\n\n", copy / flush);

    // em3d's remap() breakdown (paper: 1,120 pages, 1,659,154 total,
    // 1,497,067 flushing, 162,087 other).
    const auto em3d =
        runExperiment("em3d", scale, paperConfig(96, true));
    const Cycles other = em3d.remapTotalCycles - em3d.remapFlushCycles;
    std::printf("em3d remap() at scale %.2f:\n", scale);
    std::printf("  pages remapped   (paper 1,120):     %llu\n",
                static_cast<unsigned long long>(em3d.remapPages));
    std::printf("  total cycles     (paper 1,659,154): %llu\n",
                static_cast<unsigned long long>(
                    em3d.remapTotalCycles));
    std::printf("  flush cycles     (paper 1,497,067): %llu\n",
                static_cast<unsigned long long>(
                    em3d.remapFlushCycles));
    std::printf("  other cycles     (paper 162,087):   %llu\n",
                static_cast<unsigned long long>(other));
    std::printf("  flush share      (paper 90%%):       %.0f%%\n",
                em3d.remapTotalCycles
                    ? 100.0 *
                          static_cast<double>(em3d.remapFlushCycles) /
                          static_cast<double>(em3d.remapTotalCycles)
                    : 0.0);
    std::printf("  superpages used  (paper 16):        %zu\n",
                em3d.superpages);
    return 0;
}
