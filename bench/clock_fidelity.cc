/**
 * @file
 * §2.5 open question: how good are the MTLB's cache-filtered
 * reference bits for CLOCK?
 *
 * The MMC only sees cache fills, so a page whose hot lines stay
 * cached appears unreferenced. The paper flags the risk and declares
 * its evaluation out of scope; this harness performs it.
 *
 * Method: a 1 MB shadow superpage is watched by the CLOCK daemon.
 * Each interval, the program touches a known subset of pages (the
 * ground truth); the daemon then sweeps. A page the daemon calls
 * idle but that was actually touched is a *false idle* — CLOCK would
 * wrongly consider evicting an active page. We sweep the touched
 * set's cache residency from "always cached" (worst case for the
 * MTLB's view) to "mostly missing" (fills reach the MMC, bits are
 * accurate) by varying how many distinct lines each page touch uses.
 *
 * Usage: clock_fidelity
 */

#include <cstdio>
#include <set>

#include "base/random.hh"
#include "os/clock_daemon.hh"
#include "sim/system.hh"

using namespace mtlbsim;

namespace
{

constexpr Addr MB = 1024 * 1024;
constexpr Addr base = 0x10000000;
constexpr unsigned pages = 256;     // 1 MB superpage

struct FidelityResult
{
    double falseIdlePct;    // active pages reported idle
    double trueIdlePct;     // genuinely idle pages reported idle
};

/**
 * Run intervals at a given cache pressure.
 *
 * @param extra_footprint_mb competing data streamed between touches;
 *        0 keeps the hot pages' lines cached (the §2.5 worst case),
 *        larger values evict them so touches produce fills
 */
FidelityResult
run(unsigned extra_footprint_mb)
{
    SystemConfig config;
    config.installedBytes = 64 * MB;
    System sys(config);
    auto &as = sys.kernel().addressSpace();
    as.addRegion("data", base, 16 * MB, {});
    sys.cpu().remap(base, pages * basePageSize);

    ClockDaemon daemon(as, sys.memsys(), sys.physmap());
    daemon.watch(base);

    const Addr competing = base + 8 * MB;

    Random rng(21);
    unsigned false_idle = 0, active_total = 0;
    unsigned true_idle = 0, idle_total = 0;

    // Warm up: touch everything once, then reset the bits.
    for (unsigned p = 0; p < pages; ++p)
        sys.cpu().load(base + Addr{p} * basePageSize);
    daemon.sweep(sys.cpu().now());

    for (unsigned interval = 0; interval < 8; ++interval) {
        // Ground truth: touch a random half of the pages, four
        // line-reads each (re-using the same lines every interval,
        // so with no cache pressure they stay resident).
        std::set<unsigned> touched;
        for (unsigned p = 0; p < pages; ++p) {
            if (rng.chance(1, 2)) {
                touched.insert(p);
                for (unsigned l = 0; l < 4; ++l) {
                    sys.cpu().execute(3);
                    sys.cpu().load(base + Addr{p} * basePageSize +
                                   l * 32);
                }
            }
        }
        // Competing traffic evicts hot lines when configured.
        for (Addr off = 0;
             off < Addr{extra_footprint_mb} * MB; off += 32)
            sys.cpu().load(competing + off);

        const auto sweep = daemon.sweep(sys.cpu().now());
        std::set<Addr> idle(sweep.idle.begin(), sweep.idle.end());
        for (unsigned p = 0; p < pages; ++p) {
            const Addr va = base + Addr{p} * basePageSize;
            const bool was_touched = touched.count(p) > 0;
            const bool called_idle = idle.count(va) > 0;
            if (was_touched) {
                ++active_total;
                if (called_idle)
                    ++false_idle;
            } else {
                ++idle_total;
                if (called_idle)
                    ++true_idle;
            }
        }
    }

    return {100.0 * false_idle / active_total,
            100.0 * true_idle / idle_total};
}

} // namespace

int
main()
{
    setInformEnabled(false);

    std::printf("=== §2.5 open question: fidelity of cache-filtered "
                "MTLB reference bits for CLOCK\n");
    std::printf("    (1 MB watched superpage, 8 intervals, half the "
                "pages touched per interval)\n\n");
    std::printf("%-22s %14s %14s\n", "cache pressure",
                "false idle", "true idle");

    struct Case
    {
        const char *label;
        unsigned mb;
    };
    for (const Case c : {Case{"none (lines cached)", 0},
                         Case{"mild (1 MB stream)", 1},
                         Case{"heavy (4 MB stream)", 4}}) {
        const auto r = run(c.mb);
        std::printf("%-22s %13.1f%% %13.1f%%\n", c.label,
                    r.falseIdlePct, r.trueIdlePct);
    }

    std::printf(
        "\nfalse idle = active pages the MTLB's bits call idle "
        "(CLOCK would wrongly evict).\nWith the hot lines resident "
        "in the cache the MMC sees no fills and the §2.5 worry\nis "
        "real; under cache pressure the fills reappear and the bits "
        "become accurate.\n");
    return 0;
}
