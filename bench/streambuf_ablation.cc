/**
 * @file
 * §6 ablation: MMC-resident stream buffers.
 *
 * The paper's future-work list proposes hosting Jouppi-style stream
 * buffers in the Impulse MMC. This harness measures what they buy on
 * the five benchmarks (whose streaming behaviour varies widely) on
 * the standard MTLB machine, sweeping the buffer count.
 *
 * Usage: streambuf_ablation [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "workloads/experiment.hh"

using namespace mtlbsim;

namespace
{

ExperimentResult
runWith(const std::string &name, double scale, unsigned buffers)
{
    SystemConfig config = paperConfig(96, true);
    // Coarse-grained invariant auditing: cheap insurance that the
    // ablation exercises only consistent translation state.
    config.check.enabled = true;
    config.check.interval = 5'000'000;
    if (buffers > 0) {
        config.streamBuffers.enabled = true;
        config.streamBuffers.numBuffers = buffers;
        config.streamBuffers.depth = 4;
    }
    return runExperiment(name, scale, config);
}

} // namespace

int
main(int argc, char **argv)
{
    const double scale = argc > 1 ? std::atof(argv[1]) : 0.5;
    setInformEnabled(false);

    std::printf("=== §6 ablation: MMC stream buffers on the MTLB "
                "machine (96-entry TLB, scale %.2f)\n\n", scale);
    std::printf("%-12s %12s %12s %12s %12s\n", "workload", "none",
                "2 buffers", "4 buffers", "8 buffers");

    for (const auto &name : allWorkloadNames()) {
        const auto none = runWith(name, scale, 0);
        const double base = static_cast<double>(none.totalCycles);
        std::printf("%-12s %12.3f", name.c_str(), 1.0);
        for (unsigned buffers : {2u, 4u, 8u}) {
            const auto r = runWith(name, scale, buffers);
            std::printf(" %12.3f",
                        static_cast<double>(r.totalCycles) / base);
        }
        std::printf("\n");
        std::fprintf(stderr, "  done: %s\n", name.c_str());
    }

    std::printf("\n(normalized runtime; lower is better. Streaming "
                "workloads — radix's sequential\nphases, compress's "
                "buffers — benefit most; pointer-chasers barely "
                "move.)\n");
    return 0;
}
