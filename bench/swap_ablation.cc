/**
 * @file
 * §2.5 ablation: per-base-page swapping of shadow superpages vs
 * conventional whole-superpage swapping.
 *
 * The MTLB's per-base-page dirty bits let the OS write back only the
 * base pages that were actually modified when evicting a superpage;
 * a conventional superpage has a single dirty bit and must write
 * everything (the effect behind Talluri et al.'s reported ~60%
 * working-set inflation for large-page-only systems).
 *
 * This harness dirties a varying fraction of a superpage's base
 * pages and reports disk pages written and CPU cycles for the two
 * policies.
 *
 * Usage: swap_ablation
 */

#include <cstdio>

#include "mmc/memsys.hh"
#include "sim/system.hh"

using namespace mtlbsim;

namespace
{

constexpr Addr MB = 1024 * 1024;

struct Outcome
{
    unsigned written;
    unsigned clean;
    Cycles cycles;
};

/** Set up a 1 MB shadow superpage with @p dirty_pct of its base
 *  pages dirtied, then swap it out with the chosen policy. */
Outcome
runSwap(unsigned dirty_pct, bool pagewise)
{
    SystemConfig config;
    config.installedBytes = 64 * MB;
    // Coarse-grained invariant auditing: cheap insurance that the
    // ablation exercises only consistent translation state.
    config.check.enabled = true;
    config.check.interval = 5'000'000;
    System sys(config);
    auto &as = sys.kernel().addressSpace();
    const Addr base = 0x10000000;
    as.addRegion("data", base, MB, {});
    sys.cpu().remap(base, MB);

    // Touch every page; write to the chosen fraction.
    Random rng(17);
    for (Addr off = 0; off < MB; off += basePageSize) {
        if (rng.below(100) < dirty_pct)
            sys.cpu().store(base + off);
        else
            sys.cpu().load(base + off);
    }

    const Cycles t0 = sys.cpu().now();
    const SwapOutResult r =
        pagewise
            ? sys.kernel().swapOutSuperpagePagewise(base, t0)
            : sys.kernel().swapOutSuperpageWhole(base, t0);
    return {r.pagesWritten, r.pagesClean, r.cycles};
}

} // namespace

int
main()
{
    setInformEnabled(false);

    std::printf("=== §2.5: per-base-page vs whole-superpage "
                "swap-out of a 1 MB (256-page) shadow superpage\n\n");
    std::printf("%-10s %18s %18s %14s\n", "dirty %",
                "pagewise writes", "whole-sp writes", "I/O saved");

    for (unsigned pct : {0u, 5u, 10u, 25u, 50u, 75u, 100u}) {
        const Outcome pw = runSwap(pct, true);
        const Outcome whole = runSwap(pct, false);
        std::printf("%-10u %18u %18u %13.0f%%\n", pct, pw.written,
                    whole.written,
                    whole.written
                        ? 100.0 *
                              static_cast<double>(whole.written -
                                                  pw.written) /
                              static_cast<double>(whole.written)
                        : 0.0);
    }

    std::printf("\nconventional superpages must write every base "
                "page; the MTLB's per-base-page dirty bits write "
                "only what changed.\n");
    return 0;
}
